#include "src/regex/query_automaton.h"

#include <gtest/gtest.h>

#include "src/regex/canonical.h"
#include "src/util/random.h"

namespace pereach {
namespace {

TEST(QueryAutomatonTest, PaperExampleShape) {
  // G_q(R) for R = (DB* ∪ HR*), Example 6: states {u_s, DB, HR, u_t},
  // transitions {(us,DB),(DB,DB),(DB,ut),(us,HR),(HR,HR),(HR,ut)} plus
  // (us,ut) because ε ∈ L(R).
  const LabelId db = 0, hr = 1;
  const Regex r = Regex::Union(Regex::Star(Regex::Symbol(db)),
                               Regex::Star(Regex::Symbol(hr)));
  const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();
  EXPECT_EQ(a.num_states(), 4u);
  EXPECT_EQ(a.num_transitions(), 7u);
  EXPECT_TRUE(a.AcceptsEmpty());
  EXPECT_EQ(a.state_label(QueryAutomaton::kStart), kInvalidLabel);
  EXPECT_EQ(a.state_label(QueryAutomaton::kFinal), kInvalidLabel);

  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{hr, hr, hr, hr, hr}));
  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{db}));
  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{}));
  EXPECT_FALSE(a.AcceptsInterior(std::vector<LabelId>{db, hr}));
}

TEST(QueryAutomatonTest, SecondPaperExampleShape) {
  // R' = (CTO DB*) ∪ HR* (Example 6): 5 states, 7 transitions... the paper
  // counts 5 states and 7 transitions for its rendering; Glushkov gives the
  // same state count (u_s, u_t, CTO, DB, HR) and 8 transitions because
  // ε ∈ L(R') adds (u_s, u_t).
  const LabelId db = 0, hr = 1, cto = 2;
  const Regex r = Regex::Union(
      Regex::Concat(Regex::Symbol(cto), Regex::Star(Regex::Symbol(db))),
      Regex::Star(Regex::Symbol(hr)));
  const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();
  EXPECT_EQ(a.num_states(), 5u);
  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{cto}));
  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{cto, db, db}));
  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{hr, hr}));
  EXPECT_FALSE(a.AcceptsInterior(std::vector<LabelId>{db}));
  EXPECT_FALSE(a.AcceptsInterior(std::vector<LabelId>{cto, hr}));
}

TEST(QueryAutomatonTest, EpsilonOnly) {
  const QueryAutomaton a = QueryAutomaton::FromRegex(Regex::Epsilon()).value();
  EXPECT_EQ(a.num_states(), 2u);
  EXPECT_TRUE(a.AcceptsEmpty());
  EXPECT_FALSE(a.AcceptsInterior(std::vector<LabelId>{0}));
}

TEST(QueryAutomatonTest, SingleSymbol) {
  const QueryAutomaton a = QueryAutomaton::FromRegex(Regex::Symbol(5)).value();
  EXPECT_EQ(a.num_states(), 3u);
  EXPECT_FALSE(a.AcceptsEmpty());
  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{5}));
  EXPECT_FALSE(a.AcceptsInterior(std::vector<LabelId>{5, 5}));
  EXPECT_FALSE(a.AcceptsInterior(std::vector<LabelId>{4}));
}

TEST(QueryAutomatonTest, StatesWithLabelIndex) {
  const Regex r = Regex::Concat(Regex::Symbol(3), Regex::Symbol(3));
  const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();
  const uint64_t mask = a.StatesWithLabel(3);
  EXPECT_EQ(__builtin_popcountll(mask), 2);
  EXPECT_EQ(a.StatesWithLabel(4), 0u);
  // Start/final states never carry labels.
  EXPECT_FALSE((mask >> QueryAutomaton::kStart) & 1);
  EXPECT_FALSE((mask >> QueryAutomaton::kFinal) & 1);
}

TEST(QueryAutomatonTest, SerializationRoundTrip) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const Regex r = Regex::Random(1 + rng.Uniform(10), 6, &rng);
    const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();
    Encoder enc;
    a.Serialize(&enc);
    EXPECT_EQ(enc.size(), a.ByteSize());
    Decoder dec(enc.buffer());
    const QueryAutomaton b = QueryAutomaton::Deserialize(&dec);
    EXPECT_TRUE(dec.Done());
    ASSERT_EQ(b.num_states(), a.num_states());
    for (uint32_t q = 0; q < a.num_states(); ++q) {
      EXPECT_EQ(b.state_label(q), a.state_label(q));
      EXPECT_EQ(b.out_mask(q), a.out_mask(q));
    }
    // Behavioural check after round trip.
    for (int w = 0; w < 10; ++w) {
      std::vector<LabelId> word;
      for (size_t i = rng.Uniform(5); i > 0; --i) {
        word.push_back(static_cast<LabelId>(rng.Uniform(6)));
      }
      EXPECT_EQ(a.AcceptsInterior(word), b.AcceptsInterior(word));
    }
  }
}

TEST(QueryAutomatonTest, WildcardStarAcceptsEverything) {
  const QueryAutomaton a = QueryAutomaton::WildcardStar();
  EXPECT_TRUE(a.AcceptsEmpty());
  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{0}));
  EXPECT_TRUE(a.AcceptsInterior(std::vector<LabelId>{99, 12345, 7}));
  // Round trip preserves the wildcard.
  Encoder enc;
  a.Serialize(&enc);
  Decoder dec(enc.buffer());
  const QueryAutomaton b = QueryAutomaton::Deserialize(&dec);
  EXPECT_TRUE(b.AcceptsInterior(std::vector<LabelId>{424242}));
}

// The key property: the Glushkov query automaton accepts exactly L(R).
// Compared against the independent set-of-positions matcher on random
// regexes and random words.
TEST(QueryAutomatonTest, AgreesWithDirectMatcherOnRandomRegexes) {
  Rng rng(29);
  const size_t num_labels = 3;  // small alphabet => frequent matches
  for (int trial = 0; trial < 200; ++trial) {
    const Regex r = Regex::Random(1 + rng.Uniform(10), num_labels, &rng);
    const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();
    EXPECT_EQ(a.AcceptsEmpty(), r.MatchesEmpty());
    for (int w = 0; w < 50; ++w) {
      std::vector<LabelId> word;
      const size_t len = rng.Uniform(8);
      for (size_t i = 0; i < len; ++i) {
        word.push_back(static_cast<LabelId>(rng.Uniform(num_labels)));
      }
      ASSERT_EQ(a.AcceptsInterior(word), r.Matches(word))
          << "regex with " << r.NumSymbols() << " symbols, word len " << len;
    }
  }
}

TEST(QueryAutomatonTest, SizeLinearInRegex) {
  Rng rng(31);
  const Regex r = Regex::Random(20, 4, &rng);
  const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();
  EXPECT_EQ(a.num_states(), 22u);  // positions + u_s + u_t
}

// ---------------------------------------------------------------------------
// Canonicalization and signatures (src/regex/canonical.h)

// The load-bearing property behind every signature-keyed cache: the
// canonical automaton accepts exactly the same interior label sequences as
// the original, on random regexes and random words.
TEST(CanonicalAutomatonTest, PreservesLanguageOnRandomRegexes) {
  Rng rng(53);
  const size_t num_labels = 3;
  for (int trial = 0; trial < 200; ++trial) {
    const Regex r = Regex::Random(1 + rng.Uniform(10), num_labels, &rng);
    const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();
    const CanonicalAutomaton canon = Canonicalize(a);
    EXPECT_LE(canon.automaton.num_states(), a.num_states());
    EXPECT_EQ(canon.automaton.AcceptsEmpty(), a.AcceptsEmpty());
    for (int w = 0; w < 40; ++w) {
      std::vector<LabelId> word;
      const size_t len = rng.Uniform(8);
      for (size_t i = 0; i < len; ++i) {
        word.push_back(static_cast<LabelId>(rng.Uniform(num_labels)));
      }
      ASSERT_EQ(canon.automaton.AcceptsInterior(word), a.AcceptsInterior(word))
          << "trial " << trial << ", word len " << len;
    }
    // Canonicalization is idempotent: the canonical form is its own
    // canonical form, so signatures are stable.
    const CanonicalAutomaton again = Canonicalize(canon.automaton);
    EXPECT_EQ(again.signature, canon.signature);
  }
}

TEST(CanonicalAutomatonTest, MergesDuplicateBranchesAndDropsDeadStates) {
  // a | a: two Glushkov positions with identical label and successors
  // collapse into one — the same signature as plain a.
  const Regex a_once = Regex::Symbol(0);
  const Regex a_or_a = Regex::Union(Regex::Symbol(0), Regex::Symbol(0));
  EXPECT_EQ(Canonicalize(QueryAutomaton::FromRegex(a_or_a).value()).signature,
            Canonicalize(QueryAutomaton::FromRegex(a_once).value()).signature);

  // Positions that cannot reach u_t sit on no accepting run; an automaton
  // hand-built with such a state canonicalizes it away.
  const QueryAutomaton with_dead = QueryAutomaton::FromParts(
      {kInvalidLabel, kInvalidLabel, 7, 9},
      {uint64_t{1} << 2, 0, uint64_t{1} << QueryAutomaton::kFinal,
       uint64_t{1} << 3});  // state 3 (label 9) only loops into itself
  const CanonicalAutomaton canon = Canonicalize(with_dead);
  EXPECT_EQ(canon.automaton.num_states(), 3u);
}

TEST(CanonicalAutomatonTest, DistinguishesDifferentLanguages) {
  // Different symbol, same shape: the state labels differ, so the keys must.
  const AutomatonSignature sig_a =
      Canonicalize(QueryAutomaton::FromRegex(Regex::Symbol(0)).value())
          .signature;
  const AutomatonSignature sig_b =
      Canonicalize(QueryAutomaton::FromRegex(Regex::Symbol(1)).value())
          .signature;
  EXPECT_NE(sig_a.key, sig_b.key);

  // Identical regexes built twice produce identical signatures (the batch
  // dedup and the LRU caches rely on exactly this).
  Rng rng1(99), rng2(99);
  const Regex r1 = Regex::Random(6, 4, &rng1);
  const Regex r2 = Regex::Random(6, 4, &rng2);
  EXPECT_EQ(Canonicalize(QueryAutomaton::FromRegex(r1).value()).signature,
            Canonicalize(QueryAutomaton::FromRegex(r2).value()).signature);
  EXPECT_EQ(SignatureHash(sig_a.key), sig_a.hash);
}

}  // namespace
}  // namespace pereach
