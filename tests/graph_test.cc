#include "src/graph/graph.h"

#include <algorithm>
#include <fstream>

#include <gtest/gtest.h>

#include "src/graph/graph_io.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakeGraph;

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  const LabelId a = dict.Intern("DB");
  const LabelId b = dict.Intern("HR");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("DB"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(a), "DB");
  EXPECT_EQ(dict.Name(b), "HR");
}

TEST(LabelDictionaryTest, FindUnknownReturnsInvalid) {
  LabelDictionary dict;
  dict.Intern("X");
  EXPECT_EQ(dict.Find("Y"), kInvalidLabel);
  EXPECT_EQ(dict.Find("X"), 0u);
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, BuilderProducesCsr) {
  const Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 5u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(3), 1u);
  auto out0 = g.OutNeighbors(0);
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()),
            (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(3, 2));
}

TEST(GraphTest, ParallelEdgesAreKept) {
  const Graph g = MakeGraph(2, {{0, 1}, {0, 1}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
}

TEST(GraphTest, LabelsDefaultToZeroAndCanBeSet) {
  const Graph g = MakeGraph(3, {{0, 1}}, {5, 7});
  EXPECT_EQ(g.label(0), 5u);
  EXPECT_EQ(g.label(1), 7u);
  EXPECT_EQ(g.label(2), 0u);
}

TEST(GraphTest, InNeighborsMatchReversedEdges) {
  const Graph g = MakeGraph(4, {{0, 2}, {1, 2}, {3, 2}, {2, 0}});
  auto in2 = g.InNeighbors(2);
  std::vector<NodeId> in(in2.begin(), in2.end());
  std::sort(in.begin(), in.end());
  EXPECT_EQ(in, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(3).size(), 0u);
}

TEST(GraphTest, InNeighborsConsistentOnRandomGraph) {
  Rng rng(21);
  GraphBuilder b;
  b.AddNodes(60);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (int i = 0; i < 400; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(60));
    const NodeId v = static_cast<NodeId>(rng.Uniform(60));
    edges.emplace_back(u, v);
    b.AddEdge(u, v);
  }
  const Graph g = std::move(b).Build();
  // Cross-check: (u, v) is an out-edge iff u appears in v's in-list the same
  // number of times.
  for (NodeId v = 0; v < 60; ++v) {
    auto in = g.InNeighbors(v);
    size_t expected = 0;
    for (const auto& [eu, ev] : edges) {
      if (ev == v) ++expected;
    }
    EXPECT_EQ(in.size(), expected) << "node " << v;
  }
}

TEST(GraphTest, ByteSizeGrowsWithGraph) {
  const Graph small = MakeGraph(4, {{0, 1}});
  const Graph big = MakeGraph(400, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_LT(small.ByteSize(), big.ByteSize());
}

// ---------------------------------------------------------------------------
// graph_io
// ---------------------------------------------------------------------------

TEST(GraphIoTest, BinaryRoundTrip) {
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 0}, {4, 3}}, {1, 2, 3});
  Encoder enc;
  SerializeGraph(g, &enc);
  Decoder dec(enc.buffer());
  const Graph h = DeserializeGraph(&dec);
  EXPECT_TRUE(dec.Done());
  ASSERT_EQ(h.NumNodes(), g.NumNodes());
  ASSERT_EQ(h.NumEdges(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(h.label(v), g.label(v));
    auto a = g.OutNeighbors(v);
    auto b = h.OutNeighbors(v);
    EXPECT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()));
  }
}

TEST(GraphIoTest, TextRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pereach_graph.txt";
  const Graph g = MakeGraph(6, {{0, 5}, {5, 4}, {4, 0}, {1, 2}}, {0, 9, 0, 3});
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  Result<Graph> r = ReadEdgeList(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& h = r.value();
  ASSERT_EQ(h.NumNodes(), 6u);
  ASSERT_EQ(h.NumEdges(), 4u);
  EXPECT_EQ(h.label(1), 9u);
  EXPECT_EQ(h.label(3), 3u);
  EXPECT_TRUE(h.HasEdge(0, 5));
  EXPECT_TRUE(h.HasEdge(1, 2));
}

TEST(GraphIoTest, ReadMissingFileFails) {
  Result<Graph> r = ReadEdgeList("/nonexistent/path/graph.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(GraphIoTest, ReadRejectsBadHeader) {
  const std::string path = ::testing::TempDir() + "/pereach_bad1.txt";
  {
    std::ofstream out(path);
    out << "e 0 1\n";
  }
  Result<Graph> r = ReadEdgeList(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, ReadRejectsOutOfRangeEdge) {
  const std::string path = ::testing::TempDir() + "/pereach_bad2.txt";
  {
    std::ofstream out(path);
    out << "p 2 1\ne 0 5\n";
  }
  Result<Graph> r = ReadEdgeList(path);
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, ReadRejectsEdgeCountMismatch) {
  const std::string path = ::testing::TempDir() + "/pereach_bad3.txt";
  {
    std::ofstream out(path);
    out << "p 2 3\ne 0 1\n";
  }
  Result<Graph> r = ReadEdgeList(path);
  EXPECT_FALSE(r.ok());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = ::testing::TempDir() + "/pereach_comments.txt";
  {
    std::ofstream out(path);
    out << "# a comment\n\np 2 1\n# another\ne 0 1\n";
  }
  Result<Graph> r = ReadEdgeList(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().HasEdge(0, 1));
}

}  // namespace
}  // namespace pereach
