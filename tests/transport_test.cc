// Transport-seam tests: the fallible (kStatus) decode path every transport
// ingress uses, the socket wire framing, and backend equivalence — the shm
// and socket backends must answer bit-identically to the simulated seed.

#include "src/net/transport.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/engine/partial_eval_engine.h"
#include "src/net/cluster.h"
#include "src/util/serialization.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomMixedQuery;

// --- Decoder kStatus mode: corrupt frames become Status, never aborts ------

TEST(DecoderStatusModeTest, TruncatedVarintFailsWithStatus) {
  const std::vector<uint8_t> buf = {0x80, 0x80};  // continuation, no end
  Decoder dec(buf, Decoder::OnError::kStatus);
  EXPECT_EQ(dec.GetVarint(), 0u);
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(dec.Done());
}

TEST(DecoderStatusModeTest, OversizedCountFailsBeforeAllocation) {
  Encoder enc;
  enc.PutVarint(uint64_t{1} << 40);  // declares ~10^12 elements, provides 0
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf, Decoder::OnError::kStatus);
  EXPECT_EQ(dec.GetCount(), 0u);
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.status().code(), StatusCode::kCorruption);
}

TEST(DecoderStatusModeTest, MidFrameEofFailsAndExhausts) {
  Encoder enc;
  enc.PutVarint(100);  // frame claims 100 bytes...
  enc.PutU8(0xAB);     // ...buffer holds 1
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf, Decoder::OnError::kStatus);
  Decoder frame = dec.GetFrame();
  EXPECT_FALSE(dec.ok());
  // The failed parent is exhausted: later reads return zero values instead
  // of touching the buffer, and the sub-decoder is empty.
  EXPECT_EQ(dec.remaining(), 0u);
  EXPECT_EQ(frame.remaining(), 0u);
  EXPECT_EQ(dec.GetU8(), 0u);
}

TEST(DecoderStatusModeTest, FirstErrorMessageWins) {
  const std::vector<uint8_t> buf = {0x80};  // truncated varint
  Decoder dec(buf, Decoder::OnError::kStatus);
  (void)dec.GetVarint();
  const std::string first = dec.status().ToString();
  (void)dec.GetString();  // would fail differently; must not overwrite
  EXPECT_EQ(dec.status().ToString(), first);
}

TEST(DecoderStatusModeTest, SubFrameInheritsStatusMode) {
  Encoder body;
  body.PutVarint(uint64_t{1} << 40);  // corrupt count inside the frame
  Encoder enc;
  enc.PutFrame(body.buffer());
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf, Decoder::OnError::kStatus);
  Decoder frame = dec.GetFrame();
  ASSERT_TRUE(dec.ok());  // the frame itself was well-formed
  EXPECT_EQ(frame.GetCount(), 0u);
  EXPECT_FALSE(frame.ok());  // the sub-decoder failed...
  EXPECT_TRUE(dec.ok());     // ...without poisoning the parent
}

// --- Socket wire framing ----------------------------------------------------

class WirePipeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) close(fds_[0]);
    if (fds_[1] >= 0) close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(WirePipeTest, MessageRoundTrips) {
  std::vector<uint8_t> body = {1, 2, 3, 250, 251, 252};
  ASSERT_TRUE(WriteWireMessage(fds_[0], body, 1000).ok());
  std::vector<uint8_t> got;
  ASSERT_TRUE(ReadWireMessage(fds_[1], 1000, 1 << 20, &got).ok());
  EXPECT_EQ(got, body);
}

TEST_F(WirePipeTest, CrcMismatchIsCorruption) {
  Encoder framed;
  const std::vector<uint8_t> body = {9, 9, 9};
  framed.PutVarint(body.size());
  framed.PutRaw(body);
  framed.PutU32(WireCrc32(body.data(), body.size()) ^ 1);  // flip one bit
  ASSERT_EQ(write(fds_[0], framed.buffer().data(), framed.size()),
            static_cast<ssize_t>(framed.size()));
  std::vector<uint8_t> got;
  const Status s = ReadWireMessage(fds_[1], 1000, 1 << 20, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST_F(WirePipeTest, OversizedLengthRejectedBeforeAllocation) {
  Encoder framed;
  framed.PutVarint(uint64_t{1} << 40);  // 1 TiB claim, no body
  ASSERT_EQ(write(fds_[0], framed.buffer().data(), framed.size()),
            static_cast<ssize_t>(framed.size()));
  std::vector<uint8_t> got;
  const Status s = ReadWireMessage(fds_[1], 1000, 1 << 20, &got);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST_F(WirePipeTest, MidFrameEofIsError) {
  Encoder framed;
  framed.PutVarint(100);             // claims 100 bytes...
  framed.PutRaw({1, 2, 3});          // ...sends 3, then closes
  ASSERT_EQ(write(fds_[0], framed.buffer().data(), framed.size()),
            static_cast<ssize_t>(framed.size()));
  close(fds_[0]);
  fds_[0] = -1;
  std::vector<uint8_t> got;
  EXPECT_FALSE(ReadWireMessage(fds_[1], 1000, 1 << 20, &got).ok());
}

TEST_F(WirePipeTest, ReadDeadlineExpires) {
  std::vector<uint8_t> got;
  const Status s = ReadWireMessage(fds_[1], 50, 1 << 20, &got);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

// The read deadline covers the WHOLE message: a peer dripping one byte per
// poll interval used to reset the clock on every blocked read, stretching
// one message to (timeout x body bytes). Now the drip trips the deadline on
// schedule.
TEST_F(WirePipeTest, DripFedMessageTripsWholeMessageDeadline) {
  const int writer_fd = fds_[0];
  std::thread writer([writer_fd] {
    Encoder length;
    length.PutVarint(64);  // declare a 64-byte body...
    (void)!send(writer_fd, length.buffer().data(), length.buffer().size(),
                MSG_NOSIGNAL);
    for (int i = 0; i < 64; ++i) {  // ...and drip it one byte per 50ms
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const uint8_t byte = 0;
      // MSG_NOSIGNAL: the reader closes its end once the deadline trips.
      if (send(writer_fd, &byte, 1, MSG_NOSIGNAL) != 1) break;
    }
  });
  std::vector<uint8_t> got;
  const auto start = std::chrono::steady_clock::now();
  const Status s = ReadWireMessage(fds_[1], 300, 1 << 20, &got);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  // Generous bound: far below the ~3.2s a per-read deadline would allow.
  EXPECT_LT(elapsed_ms, 1500);
  close(fds_[1]);  // unblock the writer's next drip
  fds_[1] = -1;
  writer.join();
}

// --- Backend equivalence ----------------------------------------------------

std::vector<Query> MixedBatch(size_t n, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(RandomMixedQuery(n, /*num_labels=*/3, &rng));
  }
  return batch;
}

void ExpectBackendMatchesSim(TransportBackend backend) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  TransportOptions opts;
  opts.backend = backend;
  Cluster sim(&frag, NetworkModel(), /*num_threads=*/3);
  Cluster real(&frag, NetworkModel(), /*num_threads=*/3, opts);
  PartialEvalEngine sim_engine(&sim);
  PartialEvalEngine real_engine(&real);

  const std::vector<Query> batch = MixedBatch(ex.graph.NumNodes(), 24, 7);
  const BatchAnswer a = sim_engine.EvaluateBatch(batch);
  const BatchAnswer b = real_engine.EvaluateBatch(batch);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(a.answers[i].reachable, b.answers[i].reachable) << "query " << i;
    EXPECT_EQ(a.answers[i].distance, b.answers[i].distance) << "query " << i;
  }
  // The modeled books charge payloads only, so they are identical across
  // backends — the wall clock is the only thing a real transport changes.
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.traffic_bytes, b.metrics.traffic_bytes);
}

TEST(TransportBackendTest, ShmAnswersAndBooksMatchSim) {
  ExpectBackendMatchesSim(TransportBackend::kShm);
}

TEST(TransportBackendTest, SocketSpawnAnswersAndBooksMatchSim) {
  ExpectBackendMatchesSim(TransportBackend::kSocket);
}

TEST(TransportBackendTest, SocketSpawnsOneWorkerPerFragment) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  TransportOptions opts;
  opts.backend = TransportBackend::kSocket;
  Cluster cluster(&frag, NetworkModel(), /*num_threads=*/3, opts);

  // Connections establish lazily: no workers before the first round.
  EXPECT_TRUE(cluster.transport()->WorkerPidsForTest().empty());
  cluster.BeginQuery();
  RoundSpec spec;
  spec.kind = RoundKind::kReachRows;
  spec.accounted_broadcast_bytes = 1;
  const auto replies = cluster.TryRound(
      {0, 1, 2}, spec, [](const Fragment&) { return std::vector<uint8_t>(); });
  cluster.EndQuery();
  ASSERT_TRUE(replies.ok());
  EXPECT_EQ(replies.value().size(), 3u);
  EXPECT_EQ(cluster.transport()->WorkerPidsForTest().size(), 3u);
}

TEST(TransportBackendTest, UnreachableEndpointFailsRoundWithoutAborting) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  TransportOptions opts;
  opts.backend = TransportBackend::kSocket;
  opts.connect = {"unix:/nonexistent/pereach-0.sock",
                  "unix:/nonexistent/pereach-1.sock",
                  "unix:/nonexistent/pereach-2.sock"};
  opts.connect_timeout_ms = 200;
  opts.max_retries = 1;
  opts.retry_backoff_ms = 1;
  // Pin recovery off: this test asserts the plain failure path.
  opts.round_retries = 0;
  opts.degrade_local = false;
  opts.breaker_threshold = 0;
  Cluster cluster(&frag, NetworkModel(), /*num_threads=*/3, opts);
  cluster.BeginQuery();
  RoundSpec spec;
  spec.kind = RoundKind::kReachRows;
  spec.accounted_broadcast_bytes = 1;
  const auto replies = cluster.TryRound(
      {0, 1, 2}, spec, [](const Fragment&) { return std::vector<uint8_t>(); });
  cluster.EndQuery();
  EXPECT_FALSE(replies.ok());
}

// With degrade_local on (the default), the same unreachable endpoints do not
// fail the batch at all: every site round is evaluated over the coordinator's
// fragment copy, bit-identical to the simulated cluster.
TEST(TransportBackendTest, UnreachableEndpointDegradesLocallyByDefault) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  TransportOptions opts;
  opts.backend = TransportBackend::kSocket;
  opts.connect = {"unix:/nonexistent/pereach-0.sock",
                  "unix:/nonexistent/pereach-1.sock",
                  "unix:/nonexistent/pereach-2.sock"};
  opts.connect_timeout_ms = 100;
  opts.max_retries = 0;
  opts.retry_backoff_ms = 1;
  opts.round_retries = 0;
  opts.breaker_threshold = 1;  // open after the first failure
  Cluster sim(&frag, NetworkModel(), /*num_threads=*/3);
  Cluster real(&frag, NetworkModel(), /*num_threads=*/3, opts);
  PartialEvalEngine sim_engine(&sim);
  PartialEvalEngine real_engine(&real);

  const std::vector<Query> batch = MixedBatch(ex.graph.NumNodes(), 16, 23);
  const BatchAnswer a = sim_engine.EvaluateBatch(batch);
  const BatchAnswer b = real_engine.EvaluateBatch(batch);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(a.answers[i].reachable, b.answers[i].reachable) << "query " << i;
    EXPECT_EQ(a.answers[i].distance, b.answers[i].distance) << "query " << i;
  }
  // Degraded rounds still charge the modeled books identically.
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.traffic_bytes, b.metrics.traffic_bytes);
  const TransportHealth health = real.transport()->Health();
  EXPECT_GT(health.degraded_site_rounds, 0u);
  EXPECT_GT(health.breakers_open, 0u);
}

// With recovery pinned off, killing a worker fails the in-flight round's
// queries, and the NEXT round transparently respawns — the pre-supervisor
// recovery story, kept as the documented opt-out.
TEST(TransportBackendTest, KilledWorkerFailsRoundThenRespawns) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  TransportOptions opts;
  opts.backend = TransportBackend::kSocket;
  opts.read_timeout_ms = 2000;
  opts.round_retries = 0;
  opts.degrade_local = false;
  opts.breaker_threshold = 0;
  Cluster cluster(&frag, NetworkModel(), /*num_threads=*/3, opts);
  PartialEvalEngine engine(&cluster);

  const std::vector<Query> batch = MixedBatch(ex.graph.NumNodes(), 8, 11);
  const BatchAnswer before = engine.EvaluateBatch(batch);
  ASSERT_TRUE(before.status.ok());

  std::vector<int> pids = cluster.transport()->WorkerPidsForTest();
  ASSERT_EQ(pids.size(), 3u);
  kill(pids[1], SIGKILL);
  // The worker is dead but its connection looks healthy until used: the
  // next batch hits EOF mid-round and must reject, not abort.
  const BatchAnswer during = engine.EvaluateBatch(batch);
  EXPECT_FALSE(during.status.ok());

  // The round after that re-establishes (fresh spawn + Hello with the
  // current fragment) and serves bit-identical answers again.
  const BatchAnswer after = engine.EvaluateBatch(batch);
  ASSERT_TRUE(after.status.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(after.answers[i].reachable, before.answers[i].reachable);
    EXPECT_EQ(after.answers[i].distance, before.answers[i].distance);
  }
  const std::vector<int> respawned = cluster.transport()->WorkerPidsForTest();
  ASSERT_EQ(respawned.size(), 3u);
  EXPECT_NE(respawned[1], pids[1]);
}

// With default options the same kill is invisible to callers: the round that
// hits the dead connection re-establishes in place and re-dispatches, so the
// batch succeeds with bit-identical answers and no rejection at all.
TEST(TransportBackendTest, KilledWorkerRecoversInRound) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  TransportOptions opts;
  opts.backend = TransportBackend::kSocket;
  opts.read_timeout_ms = 2000;
  Cluster cluster(&frag, NetworkModel(), /*num_threads=*/3, opts);
  PartialEvalEngine engine(&cluster);

  const std::vector<Query> batch = MixedBatch(ex.graph.NumNodes(), 8, 13);
  const BatchAnswer before = engine.EvaluateBatch(batch);
  ASSERT_TRUE(before.status.ok());

  const std::vector<int> pids = cluster.transport()->WorkerPidsForTest();
  ASSERT_EQ(pids.size(), 3u);
  for (const int pid : pids) kill(pid, SIGKILL);

  const BatchAnswer during = engine.EvaluateBatch(batch);
  ASSERT_TRUE(during.status.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(during.answers[i].reachable, before.answers[i].reachable);
    EXPECT_EQ(during.answers[i].distance, before.answers[i].distance);
  }
  const TransportHealth health = cluster.transport()->Health();
  // Every recovery is visible in the health counters: either the round was
  // retried against a respawned worker or it was served by local degradation.
  EXPECT_GT(health.round_retries + health.degraded_site_rounds, 0u);
}

}  // namespace
}  // namespace pereach
