#include "src/core/local_eval.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/fragment/fragmentation.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;

// Decodes an equation list into {var -> (has_true, set of dep globals)},
// resolving SCC-merge aliases back into per-in-node formulas.
std::map<NodeId, std::pair<bool, std::set<NodeId>>> Flatten(
    const ReachPartialAnswer& pa) {
  std::map<NodeId, std::pair<bool, std::set<NodeId>>> out;
  std::map<uint32_t, std::pair<bool, std::set<NodeId>>> aux;
  // Two passes: aux equations resolve bottom-up (aux ids ascend in
  // dependency order), then node equations and aliases.
  for (const auto& eq : pa.equations) {
    if (!eq.is_aux) continue;
    auto& entry = aux[eq.var];
    entry.first = eq.has_true;
    for (uint32_t i : eq.deps) entry.second.insert(pa.oset_globals[i]);
    for (uint32_t a : eq.aux_deps) {
      entry.first = entry.first || aux.at(a).first;
      entry.second.insert(aux.at(a).second.begin(), aux.at(a).second.end());
    }
  }
  for (const auto& eq : pa.equations) {
    if (eq.is_aux) continue;
    auto& entry = out[eq.var];
    entry.first = entry.first || eq.has_true;
    for (uint32_t i : eq.deps) entry.second.insert(pa.oset_globals[i]);
    for (uint32_t a : eq.aux_deps) {
      entry.first = entry.first || aux.at(a).first;
      entry.second.insert(aux.at(a).second.begin(), aux.at(a).second.end());
    }
  }
  for (const auto& alias : pa.aliases) {
    out[alias.var] = alias.rep_is_aux ? aux.at(alias.rep) : out.at(alias.rep);
  }
  return out;
}

TEST(LocalEvalReachTest, PaperExample3Equations) {
  // Example 3: the rvsets computed at each site for q_r(Ann, Mark).
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);

  // F1: xAnn = xPat ∨ xMat, xFred = xEmmy.
  {
    const auto eqs = Flatten(LocalEvalReach(frag.fragment(0), ex.ann, ex.mark));
    ASSERT_EQ(eqs.size(), 2u);
    EXPECT_FALSE(eqs.at(ex.ann).first);
    EXPECT_EQ(eqs.at(ex.ann).second, (std::set<NodeId>{ex.pat, ex.mat}));
    EXPECT_FALSE(eqs.at(ex.fred).first);
    EXPECT_EQ(eqs.at(ex.fred).second, (std::set<NodeId>{ex.emmy}));
  }
  // F2: xMat = xFred, xJack = xFred, xEmmy = xFred ∨ xRoss.
  {
    const auto eqs = Flatten(LocalEvalReach(frag.fragment(1), ex.ann, ex.mark));
    ASSERT_EQ(eqs.size(), 3u);
    EXPECT_EQ(eqs.at(ex.mat).second, (std::set<NodeId>{ex.fred}));
    EXPECT_EQ(eqs.at(ex.jack).second, (std::set<NodeId>{ex.fred}));
    EXPECT_EQ(eqs.at(ex.emmy).second, (std::set<NodeId>{ex.fred, ex.ross}));
    EXPECT_FALSE(eqs.at(ex.mat).first);
    EXPECT_FALSE(eqs.at(ex.emmy).first);
  }
  // F3: xRoss = true, xPat = xJack.
  {
    const auto eqs = Flatten(LocalEvalReach(frag.fragment(2), ex.ann, ex.mark));
    ASSERT_EQ(eqs.size(), 2u);
    EXPECT_TRUE(eqs.at(ex.ross).first);   // Ross reaches Mark inside F3
    EXPECT_FALSE(eqs.at(ex.pat).first);
    EXPECT_EQ(eqs.at(ex.pat).second, (std::set<NodeId>{ex.jack}));
  }
}

TEST(LocalEvalReachTest, SourceEquationAddedEvenIfNotInNode) {
  // Ann is not an in-node of F1 (no incoming cross edge) but is the query
  // source, so localEval adds her to iset (Fig. 3 line 2).
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  const auto without_s =
      Flatten(LocalEvalReach(frag.fragment(0), ex.mark, ex.mark));
  EXPECT_EQ(without_s.count(ex.ann), 0u);
}

TEST(LocalEvalReachTest, LocalPathToTargetSetsTrue) {
  // Query whose target sits in the same fragment as the source.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  const auto eqs = Flatten(LocalEvalReach(frag.fragment(0), ex.ann, ex.walt));
  EXPECT_TRUE(eqs.at(ex.ann).first);  // Ann -> Walt inside F1
}

TEST(LocalEvalReachTest, ReflexiveInNodeTargetIsTrue) {
  // If t itself is an in-node, its equation is true via the empty path.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  const auto eqs = Flatten(LocalEvalReach(frag.fragment(1), ex.ann, ex.emmy));
  EXPECT_TRUE(eqs.at(ex.emmy).first);
}

TEST(LocalEvalReachTest, SerializationRoundTrip) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  for (SiteId i = 0; i < 3; ++i) {
    const ReachPartialAnswer pa =
        LocalEvalReach(frag.fragment(i), ex.ann, ex.mark);
    Encoder enc;
    pa.Serialize(&enc);
    Decoder dec(enc.buffer());
    const ReachPartialAnswer back = ReachPartialAnswer::Deserialize(&dec);
    EXPECT_TRUE(dec.Done());
    EXPECT_EQ(back.oset_globals, pa.oset_globals);
    EXPECT_EQ(back.aliases, pa.aliases);
    ASSERT_EQ(back.equations.size(), pa.equations.size());
    for (size_t e = 0; e < pa.equations.size(); ++e) {
      EXPECT_EQ(back.equations[e].is_aux, pa.equations[e].is_aux);
      EXPECT_EQ(back.equations[e].var, pa.equations[e].var);
      EXPECT_EQ(back.equations[e].has_true, pa.equations[e].has_true);
      EXPECT_EQ(back.equations[e].deps, pa.equations[e].deps);
      EXPECT_EQ(back.equations[e].aux_deps, pa.equations[e].aux_deps);
    }
  }
}

TEST(LocalEvalDistTest, PaperExample5Vectors) {
  // Example 5: F2's arithmetic equations for q_br(Ann, Mark, 6):
  //   xMat = min(xFred + 1), xJack = min(xFred + 2) [via Mat],
  //   xEmmy = min(xFred + 2 [via Mat], xRoss + 1).
  // (The paper's figure quotes +3 for Jack/Emmy on its rendering of the
  //  graph; on the Fig. 1 edge set used here the local distances via Mat
  //  are 2.)
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  const DistPartialAnswer pa =
      LocalEvalDist(frag.fragment(1), ex.ann, ex.mark, 6);

  std::map<NodeId, std::map<NodeId, uint64_t>> terms;
  std::map<NodeId, uint64_t> base;
  for (const auto& eq : pa.equations) {
    base[eq.var_global] = eq.base;
    for (const auto& [i, d] : eq.terms) {
      terms[eq.var_global][pa.oset_globals[i]] = d;
    }
  }
  EXPECT_EQ(terms.at(ex.mat).at(ex.fred), 1u);
  EXPECT_EQ(terms.at(ex.jack).at(ex.fred), 2u);
  EXPECT_EQ(terms.at(ex.emmy).at(ex.fred), 2u);
  EXPECT_EQ(terms.at(ex.emmy).at(ex.ross), 1u);
  EXPECT_EQ(base.at(ex.mat), kInfWeight);  // Mark not in F2
}

TEST(LocalEvalDistTest, BoundPrunesFarTargets) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  // With bound 1, Jack (distance 2 from Fred via Mat) must not appear.
  const DistPartialAnswer pa =
      LocalEvalDist(frag.fragment(1), ex.ann, ex.mark, 1);
  for (const auto& eq : pa.equations) {
    if (eq.var_global == ex.jack) {
      EXPECT_TRUE(eq.terms.empty());
    }
    for (const auto& [i, d] : eq.terms) EXPECT_LE(d, 1u);
  }
}

TEST(LocalEvalDistTest, SerializationRoundTrip) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  for (SiteId i = 0; i < 3; ++i) {
    const DistPartialAnswer pa =
        LocalEvalDist(frag.fragment(i), ex.ann, ex.mark, 6);
    Encoder enc;
    pa.Serialize(&enc);
    Decoder dec(enc.buffer());
    const DistPartialAnswer back = DistPartialAnswer::Deserialize(&dec);
    EXPECT_TRUE(dec.Done());
    EXPECT_EQ(back.oset_globals, pa.oset_globals);
    ASSERT_EQ(back.equations.size(), pa.equations.size());
    for (size_t e = 0; e < pa.equations.size(); ++e) {
      EXPECT_EQ(back.equations[e].var_global, pa.equations[e].var_global);
      EXPECT_EQ(back.equations[e].base, pa.equations[e].base);
      EXPECT_EQ(back.equations[e].terms, pa.equations[e].terms);
    }
  }
}

TEST(LocalEvalRegularTest, PaperExample7Vectors) {
  // Example 7: for q_rr(Ann, Mark, DB* ∪ HR*) on F2, the in-node vectors are
  //   Mat:  X(Fred, HR)           (Mat is HR with cross edge to Fred)
  //   Jack: all false             (Jack is MK — matches no state)
  //   Emmy: X(Ross, HR) ∨ X(Fred, HR)  (paper shows the Ross disjunct; the
  //         Fred disjunct arises via Emmy -> Mat -> Fred, all HR)
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  const LabelId db = ex.labels.Find("DB");
  const LabelId hr = ex.labels.Find("HR");
  const Regex r = Regex::Union(Regex::Star(Regex::Symbol(db)),
                               Regex::Star(Regex::Symbol(hr)));
  const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();

  const RegularPartialAnswer pa =
      LocalEvalRegular(frag.fragment(1), a, ex.ann, ex.mark);

  // Collect formulas keyed by (node, is-HR-state), resolving aliases.
  std::map<NodeId, std::set<std::pair<NodeId, LabelId>>> deps_by_node;
  std::map<NodeId, bool> has_true_by_node;
  std::map<std::pair<NodeId, uint8_t>, const RegularPartialAnswer::Equation*>
      by_key;
  for (const auto& eq : pa.equations) {
    if (!eq.is_aux) by_key[{eq.var_global, eq.state}] = &eq;
  }
  const auto absorb = [&](NodeId var,
                          const RegularPartialAnswer::Equation& eq) {
    has_true_by_node[var] = has_true_by_node[var] || eq.has_true;
    for (uint32_t i : eq.deps) {
      const auto& [node, state] = pa.var_table[i];
      deps_by_node[var].insert({node, a.state_label(state)});
    }
  };
  for (const auto& eq : pa.equations) {
    if (!eq.is_aux) absorb(eq.var_global, eq);
  }
  for (const auto& alias : pa.aliases) {
    absorb(alias.var_global, *by_key.at({alias.rep_global, alias.rep_state}));
  }
  EXPECT_EQ(deps_by_node[ex.mat],
            (std::set<std::pair<NodeId, LabelId>>{{ex.fred, hr}}));
  EXPECT_EQ(deps_by_node[ex.emmy],
            (std::set<std::pair<NodeId, LabelId>>{{ex.fred, hr},
                                                  {ex.ross, hr}}));
  EXPECT_TRUE(deps_by_node[ex.jack].empty());
  EXPECT_FALSE(has_true_by_node[ex.mat]);
  EXPECT_FALSE(has_true_by_node[ex.emmy]);
}

TEST(LocalEvalRegularTest, TargetFragmentProducesTrue) {
  // In F3, Ross (HR) reaches Mark = t locally, so X(Ross, HR) = true.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  const LabelId db = ex.labels.Find("DB");
  const LabelId hr = ex.labels.Find("HR");
  const QueryAutomaton a = QueryAutomaton::FromRegex(Regex::Union(
      Regex::Star(Regex::Symbol(db)), Regex::Star(Regex::Symbol(hr)))).value();

  const RegularPartialAnswer pa =
      LocalEvalRegular(frag.fragment(2), a, ex.ann, ex.mark);
  bool ross_true = false;
  for (const auto& eq : pa.equations) {
    if (eq.var_global == ex.ross && a.state_label(eq.state) == hr) {
      ross_true |= eq.has_true;
    }
  }
  for (const auto& alias : pa.aliases) {
    if (alias.var_global != ex.ross) continue;
    for (const auto& eq : pa.equations) {
      if (eq.var_global == alias.rep_global && eq.state == alias.rep_state &&
          a.state_label(alias.state) == hr) {
        ross_true |= eq.has_true;
      }
    }
  }
  EXPECT_TRUE(ross_true);
}

TEST(LocalEvalRegularTest, SerializationRoundTrip) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  const QueryAutomaton a = QueryAutomaton::WildcardStar();
  for (SiteId i = 0; i < 3; ++i) {
    const RegularPartialAnswer pa =
        LocalEvalRegular(frag.fragment(i), a, ex.ann, ex.mark);
    Encoder enc;
    pa.Serialize(&enc);
    Decoder dec(enc.buffer());
    const RegularPartialAnswer back = RegularPartialAnswer::Deserialize(&dec);
    EXPECT_TRUE(dec.Done());
    EXPECT_EQ(back.var_table, pa.var_table);
    EXPECT_EQ(back.aliases, pa.aliases);
    ASSERT_EQ(back.equations.size(), pa.equations.size());
    for (size_t e = 0; e < pa.equations.size(); ++e) {
      EXPECT_EQ(back.equations[e].var_global, pa.equations[e].var_global);
      EXPECT_EQ(back.equations[e].state, pa.equations[e].state);
      EXPECT_EQ(back.equations[e].has_true, pa.equations[e].has_true);
      EXPECT_EQ(back.equations[e].deps, pa.equations[e].deps);
    }
  }
}

TEST(PackNodeStateTest, IsInjectiveOverStates) {
  std::set<uint64_t> seen;
  for (NodeId v = 0; v < 100; ++v) {
    for (uint32_t q = 0; q < 64; ++q) {
      EXPECT_TRUE(seen.insert(PackNodeState(v, q)).second);
    }
  }
}

}  // namespace
}  // namespace pereach
