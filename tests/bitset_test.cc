#include "src/util/bitset.h"

#include <set>

#include <gtest/gtest.h>

#include "src/util/fixed_bitset.h"
#include "src/util/random.h"

namespace pereach {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitsetTest, SetResetTest) {
  Bitset b(130);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitsetTest, UnionWithReportsChange) {
  Bitset a(70), b(70);
  b.Set(5);
  b.Set(69);
  EXPECT_TRUE(a.UnionWith(b));
  EXPECT_TRUE(a.Test(5));
  EXPECT_TRUE(a.Test(69));
  EXPECT_FALSE(a.UnionWith(b));  // already a superset
}

TEST(BitsetTest, Intersects) {
  Bitset a(128), b(128);
  a.Set(100);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(100);
  EXPECT_TRUE(a.Intersects(b));
  b.Reset(100);
  b.Set(99);
  EXPECT_FALSE(a.Intersects(b));
}

TEST(BitsetTest, ForEachSetBitAscending) {
  Bitset b(200);
  const std::vector<size_t> expected = {0, 1, 63, 64, 65, 128, 199};
  for (size_t i : expected) b.Set(i);
  EXPECT_EQ(b.ToVector(), expected);
}

TEST(BitsetTest, ClearZeroesEverything) {
  Bitset b(90);
  for (size_t i = 0; i < 90; i += 3) b.Set(i);
  b.Clear();
  EXPECT_TRUE(b.None());
}

TEST(BitsetTest, EqualityComparesSizeAndBits) {
  Bitset a(64), b(64), c(65);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.Set(3);
  EXPECT_FALSE(a == b);
  b.Set(3);
  EXPECT_EQ(a, b);
}

TEST(BitsetTest, SizeZeroIsLegal) {
  Bitset b(0);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
}

// Property: a Bitset behaves exactly like std::set<size_t> under random
// Set/Reset/Test/Count sequences.
TEST(BitsetTest, MatchesReferenceSetUnderRandomOps) {
  Rng rng(7);
  const size_t n = 500;
  Bitset b(n);
  std::set<size_t> reference;
  for (int op = 0; op < 5000; ++op) {
    const size_t i = rng.Uniform(n);
    switch (rng.Uniform(3)) {
      case 0:
        b.Set(i);
        reference.insert(i);
        break;
      case 1:
        b.Reset(i);
        reference.erase(i);
        break;
      default:
        ASSERT_EQ(b.Test(i), reference.count(i) > 0) << "bit " << i;
    }
  }
  EXPECT_EQ(b.Count(), reference.size());
  std::vector<size_t> expected(reference.begin(), reference.end());
  EXPECT_EQ(b.ToVector(), expected);
}

// Property: UnionWith agrees with set_union.
TEST(BitsetTest, UnionMatchesReferenceUnion) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(300);
    Bitset a(n), b(n);
    std::set<size_t> ra, rb;
    for (size_t i = 0; i < n / 2; ++i) {
      const size_t x = rng.Uniform(n);
      a.Set(x);
      ra.insert(x);
      const size_t y = rng.Uniform(n);
      b.Set(y);
      rb.insert(y);
    }
    const bool expect_changed = !std::includes(ra.begin(), ra.end(),
                                               rb.begin(), rb.end());
    EXPECT_EQ(a.UnionWith(b), expect_changed);
    ra.insert(rb.begin(), rb.end());
    std::vector<size_t> expected(ra.begin(), ra.end());
    EXPECT_EQ(a.ToVector(), expected);
  }
}

// ---------------------------------------------------------------------------
// FixedBitset — the inline fixed-width sibling (Lanes64 = FixedBitset<1> is
// the 64-lane mask of the bit-parallel batch sweep).

TEST(FixedBitsetTest, BasicOperations) {
  Lanes64 b;
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.size(), 64u);
  b.Set(0);
  b.Set(63);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_FALSE(b.Test(31));
  EXPECT_EQ(b.Count(), 2u);
  b.Reset(0);
  EXPECT_FALSE(b.Test(0));
  EXPECT_TRUE(b.Any());
  b.Clear();
  EXPECT_TRUE(b.None());
}

TEST(FixedBitsetTest, WordAccessAndBitFactory) {
  Lanes64 b = Lanes64::Bit(5);
  EXPECT_EQ(b.word(0), uint64_t{1} << 5);
  b.set_word(0, 0xff);
  EXPECT_EQ(b.Count(), 8u);
  EXPECT_TRUE(b.Test(7));
  EXPECT_FALSE(b.Test(8));
}

TEST(FixedBitsetTest, MultiWordOperators) {
  FixedBitset<3> a, b;
  a.Set(0);
  a.Set(64);     // word 1
  a.Set(191);    // word 2, last bit
  b.Set(64);
  b.Set(100);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ((a & b).Count(), 1u);
  EXPECT_EQ((a | b).Count(), 4u);
  FixedBitset<3> c = a;
  EXPECT_FALSE(c.UnionWith(a));  // already a superset of itself
  EXPECT_TRUE(c.UnionWith(b));
  EXPECT_EQ(c, a | b);
}

TEST(FixedBitsetTest, ForEachSetBitAscending) {
  FixedBitset<2> b;
  const std::vector<size_t> expected = {0, 1, 63, 64, 100, 127};
  for (size_t i : expected) b.Set(i);
  std::vector<size_t> got;
  b.ForEachSetBit([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace pereach
