// Tests for the unified QueryEngine subsystem: batch-vs-single equivalence
// across equation forms, O(1) communication rounds per batch, batch traffic
// strictly below sequential singles, FragmentContext cache coherence under
// incremental edge updates, and baseline engines behind the same interface.

#include "src/engine/partial_eval_engine.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/baselines/centralized.h"
#include "src/core/dis_dist.h"
#include "src/core/dis_reach.h"
#include "src/core/dis_rpq.h"
#include "src/core/incremental.h"
#include "src/engine/baseline_engines.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::EdgeWorld;
using testing_util::MakeGraph;
using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;
using testing_util::RandomReachBatch;

class EquationFormEngineTest : public ::testing::TestWithParam<EquationForm> {
};

// The randomized differential core: EvaluateBatch answers must match both
// the single-query wrappers and the centralized oracle, for every equation
// form, on random graphs and partitions.
TEST_P(EquationFormEngineTest, BatchMatchesSinglesAndOracle) {
  const EquationForm form = GetParam();
  Rng rng(42 + static_cast<uint64_t>(form));
  for (int trial = 0; trial < 4; ++trial) {
    const size_t n = 30 + 30 * static_cast<size_t>(trial);
    const Graph g = ErdosRenyi(n, 3 * n, 3, &rng);
    const size_t k = 2 + trial;
    const std::vector<SiteId> part = RandomPartition(n, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel());
    PartialEvalEngine engine(&cluster, {.form = form});

    std::vector<Query> batch = RandomReachBatch(n, 24, &rng);
    batch.push_back(Query::Reach(5, 5));  // trivial member
    const BatchAnswer result = engine.EvaluateBatch(batch);
    ASSERT_EQ(result.answers.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Query& q = batch[i];
      ASSERT_EQ(result.answers[i].reachable,
                CentralizedReach(g, q.source, q.target))
          << "form=" << static_cast<int>(form) << " s=" << q.source
          << " t=" << q.target;
      ASSERT_EQ(result.answers[i].reachable,
                DisReach(&cluster, {q.source, q.target}).reachable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Forms, EquationFormEngineTest,
                         ::testing::Values(EquationForm::kAuto,
                                           EquationForm::kClosure,
                                           EquationForm::kDag),
                         [](const ::testing::TestParamInfo<EquationForm>& i) {
                           switch (i.param) {
                             case EquationForm::kAuto: return "auto";
                             case EquationForm::kClosure: return "closure";
                             case EquationForm::kDag: return "dag";
                           }
                           return "unknown";
                         });

// Acceptance criterion: a batch of k reachability queries completes in O(1)
// communication rounds — exactly one here — with one visit and at most two
// messages per site, independent of k.
TEST(QueryEngineBatchTest, BatchOfManyQueriesIsOneRound) {
  Rng rng(7);
  const Graph g = ErdosRenyi(120, 360, 3, &rng);
  const std::vector<SiteId> part = RandomPartition(120, 6, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 6);
  Cluster cluster(&frag, NetworkModel());
  PartialEvalEngine engine(&cluster);

  for (size_t batch_size : {2u, 16u, 64u}) {
    const std::vector<Query> batch = RandomReachBatch(120, batch_size, &rng);
    const BatchAnswer result = engine.EvaluateBatch(batch);
    EXPECT_EQ(result.metrics.rounds, 1u) << "batch_size=" << batch_size;
    EXPECT_LE(result.metrics.messages, 2 * frag.num_fragments());
    EXPECT_EQ(result.metrics.queries, batch_size);
    for (size_t v : result.metrics.site_visits) EXPECT_EQ(v, 1u);
  }
}

TEST(QueryEngineBatchTest, AllTrivialBatchTouchesNoSite) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  PartialEvalEngine engine(&cluster);
  const std::vector<Query> batch = {Query::Reach(1, 1), Query::Dist(2, 2, 5)};
  const BatchAnswer result = engine.EvaluateBatch(batch);
  EXPECT_EQ(result.metrics.rounds, 0u);
  EXPECT_EQ(result.metrics.TotalVisits(), 0u);
  EXPECT_TRUE(result.answers[0].reachable);
  EXPECT_EQ(result.answers[1].distance, 0u);
}

// Acceptance criterion: the batch costs strictly less traffic and modeled
// response time than the same queries run sequentially (the shared oset
// table amortizes, and 2·latency is paid once instead of k times).
TEST(QueryEngineBatchTest, BatchBeatsSequentialSinglesOnTrafficAndTime) {
  Rng rng(11);
  const size_t n = 200;
  const Graph g = ErdosRenyi(n, 4 * n, 3, &rng);
  const std::vector<SiteId> part = RandomPartition(n, 8, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 8);
  Cluster cluster(&frag, NetworkModel());
  PartialEvalEngine engine(&cluster);

  const std::vector<Query> batch = RandomReachBatch(n, 64, &rng);

  RunMetrics sequential;
  for (const Query& q : batch) {
    sequential.Accumulate(engine.Evaluate(q).metrics);
  }
  const BatchAnswer batched = engine.EvaluateBatch(batch);

  EXPECT_EQ(sequential.rounds, 64u);
  EXPECT_EQ(batched.metrics.rounds, 1u);
  EXPECT_LT(batched.metrics.traffic_bytes, sequential.traffic_bytes);
  EXPECT_LT(batched.metrics.modeled_ms, sequential.modeled_ms);
}

// A heterogeneous batch multiplexes all three query classes through one
// round and still matches the per-class single-query paths.
TEST(QueryEngineBatchTest, MixedKindBatchMatchesSingles) {
  Rng rng(23);
  const size_t n = 80;
  const Graph g = ErdosRenyi(n, 3 * n, 4, &rng);
  const std::vector<SiteId> part = RandomPartition(n, 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  Cluster cluster(&frag, NetworkModel());
  PartialEvalEngine engine(&cluster);

  std::vector<Query> batch;
  std::vector<QueryAutomaton> automata;
  for (int i = 0; i < 8; ++i) {
    automata.push_back(
        QueryAutomaton::FromRegex(Regex::Random(3, 4, &rng)).value());
  }
  for (int i = 0; i < 24; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(n));
    const NodeId t = static_cast<NodeId>(rng.Uniform(n));
    switch (i % 3) {
      case 0: batch.push_back(Query::Reach(s, t)); break;
      case 1: batch.push_back(Query::Dist(s, t, 1 + i % 7)); break;
      case 2: batch.push_back(Query::Rpq(s, t, automata[i % 8])); break;
    }
  }

  const BatchAnswer result = engine.EvaluateBatch(batch);
  EXPECT_EQ(result.metrics.rounds, 1u);
  for (size_t i = 0; i < batch.size(); ++i) {
    const Query& q = batch[i];
    switch (q.kind) {
      case QueryKind::kReach:
        ASSERT_EQ(result.answers[i].reachable,
                  DisReach(&cluster, {q.source, q.target}).reachable)
            << "i=" << i;
        break;
      case QueryKind::kDist: {
        const QueryAnswer single =
            DisDist(&cluster, {q.source, q.target, q.bound});
        ASSERT_EQ(result.answers[i].reachable, single.reachable) << "i=" << i;
        ASSERT_EQ(result.answers[i].distance, single.distance) << "i=" << i;
        break;
      }
      case QueryKind::kRpq:
        ASSERT_EQ(result.answers[i].reachable,
                  DisRpqAutomaton(&cluster, q.source, q.target, *q.automaton)
                      .reachable)
            << "i=" << i;
        break;
    }
  }
}

// The closure fast path reads cached rows instead of re-running localEval;
// a warm cache must serve whole batches without any section rebuild.
TEST(QueryEngineCacheTest, WarmContextServesBatchesWithoutRebuild) {
  Rng rng(31);
  const size_t n = 100;
  const Graph g = ErdosRenyi(n, 3 * n, 3, &rng);
  const std::vector<SiteId> part = RandomPartition(n, 5, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 5);
  Cluster cluster(&frag, NetworkModel());
  PartialEvalEngine engine(&cluster, {.form = EquationForm::kClosure});

  engine.EvaluateBatch(RandomReachBatch(n, 8, &rng));
  const size_t builds_after_warmup = engine.context_cache().build_count();
  EXPECT_EQ(builds_after_warmup, frag.num_fragments());

  engine.EvaluateBatch(RandomReachBatch(n, 32, &rng));
  EXPECT_EQ(engine.context_cache().build_count(), builds_after_warmup);

  engine.InvalidateFragment(0);
  engine.EvaluateBatch(RandomReachBatch(n, 4, &rng));
  EXPECT_EQ(engine.context_cache().build_count(), builds_after_warmup + 1);
}

// Differential test over incremental updates: after each AddEdge flows
// through the IncrementalReachIndex hook, a warm engine (cached contexts,
// selectively invalidated) must agree with a cold engine and the oracle.
TEST(QueryEngineCacheTest, CachedContextMatchesColdStartAfterUpdates) {
  Rng rng(57);
  const size_t n = 60;
  const size_t k = 4;
  Graph g = ErdosRenyi(n, 2 * n, 3, &rng);
  const std::vector<SiteId> part = RandomPartition(n, k, &rng);

  // Track edges alongside the index so the centralized oracle sees the same
  // evolving graph.
  EdgeWorld world = EdgeWorld::FromGraph(g);

  IncrementalReachIndex index(g, part, k);
  Cluster cluster(&index.fragmentation(), NetworkModel());
  PartialEvalEngine warm(&cluster, {.form = EquationForm::kClosure});
  index.SetUpdateListener([&warm](SiteId site) {
    warm.InvalidateFragment(site);
  });

  for (int round = 0; round < 6; ++round) {
    const std::vector<Query> batch = RandomReachBatch(n, 16, &rng);
    const BatchAnswer warm_answers = warm.EvaluateBatch(batch);

    PartialEvalEngine cold(&cluster, {.form = EquationForm::kClosure});
    const BatchAnswer cold_answers = cold.EvaluateBatch(batch);

    const Graph current = world.Build();

    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(warm_answers.answers[i].reachable,
                cold_answers.answers[i].reachable)
          << "round=" << round << " i=" << i;
      ASSERT_EQ(warm_answers.answers[i].reachable,
                CentralizedReach(current, batch[i].source, batch[i].target))
          << "round=" << round << " i=" << i;
    }

    const auto added = world.AddRandomEdges(1, &rng);
    index.AddEdge(added[0].first, added[0].second);
  }
}

// Baselines behind the engine interface answer identically; the ship-all
// engine amortizes its Θ(|G|) shipping over the batch (still one round).
TEST(BaselineEngineTest, NaiveAndMessagePassingAgreeWithPartialEval) {
  Rng rng(71);
  const size_t n = 70;
  const Graph g = ErdosRenyi(n, 3 * n, 3, &rng);
  const std::vector<SiteId> part = RandomPartition(n, 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  Cluster cluster(&frag, NetworkModel());

  PartialEvalEngine pe(&cluster);
  NaiveShipAllEngine naive(&cluster);
  MessagePassingEngine mp(&cluster);

  const std::vector<Query> batch = RandomReachBatch(n, 20, &rng);
  const BatchAnswer pe_result = pe.EvaluateBatch(batch);
  const BatchAnswer naive_result = naive.EvaluateBatch(batch);
  const BatchAnswer mp_result = mp.EvaluateBatch(batch);

  EXPECT_EQ(naive_result.metrics.rounds, 1u);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(pe_result.answers[i].reachable,
              naive_result.answers[i].reachable);
    ASSERT_EQ(pe_result.answers[i].reachable, mp_result.answers[i].reachable);
  }
}

TEST(BaselineEngineTest, SuciuEngineMatchesPartialEvalOnRegularQueries) {
  Rng rng(83);
  const size_t n = 50;
  const Graph g = ErdosRenyi(n, 3 * n, 4, &rng);
  const std::vector<SiteId> part = RandomPartition(n, 3, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 3);
  Cluster cluster(&frag, NetworkModel());

  PartialEvalEngine pe(&cluster);
  SuciuRpqEngine suciu(&cluster);

  std::vector<Query> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(Query::Rpq(static_cast<NodeId>(rng.Uniform(n)),
                               static_cast<NodeId>(rng.Uniform(n)),
                               QueryAutomaton::FromRegex(
                                   Regex::Random(3, 4, &rng)).value()));
  }
  const BatchAnswer pe_result = pe.EvaluateBatch(batch);
  const BatchAnswer suciu_result = suciu.EvaluateBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(pe_result.answers[i].reachable,
              suciu_result.answers[i].reachable)
        << "i=" << i;
  }
}

}  // namespace
}  // namespace pereach
