#include "src/core/dis_reach.h"

#include <gtest/gtest.h>

#include "src/baselines/centralized.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakeGraph;
using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;

TEST(DisReachTest, PaperExampleAnnReachesMark) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisReach(&cluster, {ex.ann, ex.mark});
  EXPECT_TRUE(a.reachable);
  // Theorem 1(b): each site visited exactly once.
  for (size_t v : a.metrics.site_visits) EXPECT_EQ(v, 1u);
  EXPECT_EQ(a.metrics.rounds, 1u);
}

TEST(DisReachTest, PaperExampleNegative) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  EXPECT_FALSE(DisReach(&cluster, {ex.mark, ex.ann}).reachable);
  EXPECT_FALSE(DisReach(&cluster, {ex.ann, ex.tom}).reachable);
  EXPECT_TRUE(DisReach(&cluster, {ex.pat, ex.mark}).reachable);
}

TEST(DisReachTest, SourceEqualsTarget) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisReach(&cluster, {ex.tom, ex.tom});
  EXPECT_TRUE(a.reachable);
}

TEST(DisReachTest, SingleFragmentDegeneratesToLocalSearch) {
  const PaperExample ex = MakePaperExample();
  const std::vector<SiteId> part(ex.graph.NumNodes(), 0);
  const Fragmentation frag = Fragmentation::Build(ex.graph, part, 1);
  Cluster cluster(&frag, NetworkModel());
  EXPECT_TRUE(DisReach(&cluster, {ex.ann, ex.mark}).reachable);
  EXPECT_FALSE(DisReach(&cluster, {ex.mark, ex.ann}).reachable);
}

TEST(DisReachTest, CycleSpanningAllFragments) {
  // A directed cycle cut across 3 fragments: everything reaches everything.
  Rng rng(5);
  const Graph g = Cycle(9, 1, &rng);
  const std::vector<SiteId> part = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  const Fragmentation frag = Fragmentation::Build(g, part, 3);
  Cluster cluster(&frag, NetworkModel());
  for (NodeId s = 0; s < 9; s += 2) {
    for (NodeId t = 0; t < 9; t += 3) {
      EXPECT_TRUE(DisReach(&cluster, {s, t}).reachable);
    }
  }
}

TEST(DisReachTest, PathBouncingBetweenFragments) {
  // The motivating worst case of §1: a path alternating between two sites.
  const Graph g = MakeGraph(8, {{0, 4}, {4, 1}, {1, 5}, {5, 2}, {2, 6},
                                {6, 3}, {3, 7}});
  const std::vector<SiteId> part = {0, 0, 0, 0, 1, 1, 1, 1};
  const Fragmentation frag = Fragmentation::Build(g, part, 2);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisReach(&cluster, {0, 7});
  EXPECT_TRUE(a.reachable);
  // Partial evaluation still visits each site exactly once.
  for (size_t v : a.metrics.site_visits) EXPECT_EQ(v, 1u);
}

// Property sweep: disReach agrees with centralized BFS over random graphs,
// random partitions, and random query pairs.
struct ReachCase {
  std::string name;
  size_t n;
  size_t m_factor;
  size_t k;
};

class DisReachPropertyTest : public ::testing::TestWithParam<ReachCase> {};

TEST_P(DisReachPropertyTest, MatchesCentralizedBfs) {
  const ReachCase& c = GetParam();
  Rng rng(1000 + c.n + c.k);
  for (int graph_trial = 0; graph_trial < 5; ++graph_trial) {
    const Graph g = ErdosRenyi(c.n, c.m_factor * c.n, 3, &rng);
    const std::vector<SiteId> part = RandomPartition(c.n, c.k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, c.k);
    Cluster cluster(&frag, NetworkModel());
    for (int q = 0; q < 20; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(c.n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(c.n));
      const QueryAnswer a = DisReach(&cluster, {s, t});
      ASSERT_EQ(a.reachable, CentralizedReach(g, s, t))
          << "s=" << s << " t=" << t << " n=" << c.n << " k=" << c.k;
      if (s != t) {
        for (size_t v : a.metrics.site_visits) ASSERT_EQ(v, 1u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DisReachPropertyTest,
    ::testing::Values(ReachCase{"tiny2", 6, 1, 2}, ReachCase{"tiny3", 10, 2, 3},
                      ReachCase{"sparse", 50, 1, 4},
                      ReachCase{"medium", 80, 2, 5},
                      ReachCase{"dense", 40, 5, 4},
                      ReachCase{"manyfrag", 60, 2, 12},
                      ReachCase{"bigger", 200, 3, 8}),
    [](const ::testing::TestParamInfo<ReachCase>& param_info) {
      return param_info.param.name;
    });

// Also sweep structured topologies, which stress SCC handling.
TEST(DisReachPropertyTest, MatchesCentralizedOnStructuredGraphs) {
  Rng rng(77);
  const std::vector<Graph> graphs = [&] {
    std::vector<Graph> gs;
    gs.push_back(Chain(30, 1, &rng));
    gs.push_back(Cycle(30, 1, &rng));
    gs.push_back(GridGraph(6, 6, 1, &rng));
    gs.push_back(PreferentialAttachment(60, 2, 1, &rng));
    gs.push_back(ForestFire(60, 0.3, 1, &rng));
    gs.push_back(LayeredCitationDag(5, 12, 2, 1, &rng));
    return gs;
  }();
  for (const Graph& g : graphs) {
    const size_t k = 2 + rng.Uniform(5);
    const std::vector<SiteId> part = RandomPartition(g.NumNodes(), k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel());
    for (int q = 0; q < 25; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
      const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
      ASSERT_EQ(DisReach(&cluster, {s, t}).reachable,
                CentralizedReach(g, s, t))
          << "s=" << s << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace pereach
