#include "src/mapreduce/mapreduce.h"

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "src/util/serialization.h"

namespace pereach {
namespace {

KeyValue MakeKv(uint64_t key, const std::string& text) {
  KeyValue kv;
  kv.key = key;
  kv.value.assign(text.begin(), text.end());
  return kv;
}

std::string ValueText(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

// Classic word count: map emits (word-hash, word), reduce emits counts.
TEST(MapReduceTest, WordCount) {
  ThreadPool pool(4);
  MapReduce mr(&pool);

  const std::vector<KeyValue> inputs = {
      MakeKv(0, "the quick brown fox"),
      MakeKv(1, "the lazy dog"),
      MakeKv(2, "the quick dog"),
  };

  const MapReduce::MapFn map_fn = [](const KeyValue& input) {
    std::vector<KeyValue> out;
    std::string word;
    const std::string text = ValueText(input.value);
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == ' ') {
        if (!word.empty()) {
          KeyValue kv;
          kv.key = std::hash<std::string>{}(word);
          kv.value.assign(word.begin(), word.end());
          out.push_back(std::move(kv));
          word.clear();
        }
      } else {
        word.push_back(text[i]);
      }
    }
    return out;
  };

  const MapReduce::ReduceFn reduce_fn =
      [](uint64_t key, const std::vector<std::vector<uint8_t>>& values) {
        KeyValue kv;
        kv.key = key;
        const std::string out =
            ValueText(values[0]) + ":" + std::to_string(values.size());
        kv.value.assign(out.begin(), out.end());
        return std::vector<KeyValue>{kv};
      };

  const MapReduce::Result result =
      mr.Run(inputs, /*num_mappers=*/3, /*num_reducers=*/2, map_fn, reduce_fn);

  std::map<std::string, int> counts;
  for (const KeyValue& kv : result.output) {
    const std::string text = ValueText(kv.value);
    const size_t colon = text.find(':');
    counts[text.substr(0, colon)] = std::stoi(text.substr(colon + 1));
  }
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("quick"), 2);
  EXPECT_EQ(counts.at("dog"), 2);
  EXPECT_EQ(counts.at("lazy"), 1);
  EXPECT_EQ(counts.at("brown"), 1);
  EXPECT_EQ(counts.at("fox"), 1);
}

TEST(MapReduceTest, StatsAreConsistent) {
  ThreadPool pool(2);
  MapReduce mr(&pool);
  const std::vector<KeyValue> inputs = {MakeKv(0, "aaaa"), MakeKv(1, "bb"),
                                        MakeKv(2, "c")};
  const MapReduce::MapFn map_fn = [](const KeyValue& input) {
    std::vector<KeyValue> out(1);
    out[0].key = 7;
    out[0].value = input.value;
    return out;
  };
  const MapReduce::ReduceFn reduce_fn =
      [](uint64_t, const std::vector<std::vector<uint8_t>>& values) {
        KeyValue kv;
        kv.key = 0;
        kv.value.push_back(static_cast<uint8_t>(values.size()));
        return std::vector<KeyValue>{kv};
      };
  const MapReduce::Result r = mr.Run(inputs, 3, 1, map_fn, reduce_fn);
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0].value[0], 3);

  const MapReduceStats& s = r.stats;
  EXPECT_EQ(s.num_mappers, 3u);
  EXPECT_EQ(s.num_reducers, 1u);
  // Input bytes = value sizes + 8B key envelope each.
  EXPECT_EQ(s.map_input_bytes, 4u + 8 + 2 + 8 + 1 + 8);
  EXPECT_EQ(s.max_mapper_input, 4u + 8);
  // All intermediate records land on the single reducer.
  EXPECT_EQ(s.shuffle_bytes, s.max_reducer_input);
  EXPECT_EQ(s.EccBytes(), s.max_mapper_input + s.max_reducer_input);
  EXPECT_GE(s.wall_ms, 0.0);
}

TEST(MapReduceTest, RecordsRouteToMapperByKeyModulo) {
  ThreadPool pool(2);
  MapReduce mr(&pool);
  // Two records with keys 0 and 2 and num_mappers = 2 -> both on mapper 0.
  const std::vector<KeyValue> inputs = {MakeKv(0, "xx"), MakeKv(2, "yy")};
  const MapReduce::MapFn map_fn = [](const KeyValue& input) {
    std::vector<KeyValue> out(1);
    out[0].key = input.key;
    out[0].value = input.value;
    return out;
  };
  const MapReduce::ReduceFn reduce_fn =
      [](uint64_t key, const std::vector<std::vector<uint8_t>>& values) {
        KeyValue kv;
        kv.key = key;
        kv.value.push_back(static_cast<uint8_t>(values.size()));
        return std::vector<KeyValue>{kv};
      };
  const MapReduce::Result r = mr.Run(inputs, 2, 1, map_fn, reduce_fn);
  EXPECT_EQ(r.stats.max_mapper_input, (2u + 8) * 2);  // both on one mapper
  EXPECT_EQ(r.output.size(), 2u);                     // two distinct keys
}

TEST(MapReduceTest, EmptyInputProducesEmptyOutput) {
  ThreadPool pool(2);
  MapReduce mr(&pool);
  const MapReduce::Result r = mr.Run(
      {}, 2, 1,
      [](const KeyValue&) { return std::vector<KeyValue>(); },
      [](uint64_t, const std::vector<std::vector<uint8_t>>&) {
        return std::vector<KeyValue>();
      });
  EXPECT_TRUE(r.output.empty());
  EXPECT_EQ(r.stats.map_input_bytes, 0u);
}

TEST(MapReduceTest, DeterministicAcrossRuns) {
  ThreadPool pool(4);
  MapReduce mr(&pool);
  std::vector<KeyValue> inputs;
  for (uint64_t i = 0; i < 20; ++i) inputs.push_back(MakeKv(i, "v"));
  const MapReduce::MapFn map_fn = [](const KeyValue& input) {
    std::vector<KeyValue> out(1);
    out[0].key = input.key % 5;
    out[0].value.push_back(static_cast<uint8_t>(input.key));
    return out;
  };
  const MapReduce::ReduceFn reduce_fn =
      [](uint64_t key, const std::vector<std::vector<uint8_t>>& values) {
        KeyValue kv;
        kv.key = key;
        int sum = 0;
        for (const auto& v : values) sum += v[0];
        kv.value.push_back(static_cast<uint8_t>(sum));
        return std::vector<KeyValue>{kv};
      };
  const MapReduce::Result r1 = mr.Run(inputs, 4, 2, map_fn, reduce_fn);
  const MapReduce::Result r2 = mr.Run(inputs, 4, 2, map_fn, reduce_fn);
  ASSERT_EQ(r1.output.size(), r2.output.size());
  std::map<uint64_t, uint8_t> o1, o2;
  for (const auto& kv : r1.output) o1[kv.key] = kv.value[0];
  for (const auto& kv : r2.output) o2[kv.key] = kv.value[0];
  EXPECT_EQ(o1, o2);
}

}  // namespace
}  // namespace pereach
