#include "src/graph/generators.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"

namespace pereach {
namespace {

TEST(GeneratorsTest, ErdosRenyiCounts) {
  Rng rng(1);
  const Graph g = ErdosRenyi(100, 500, 4, &rng);
  EXPECT_EQ(g.NumNodes(), 100u);
  EXPECT_EQ(g.NumEdges(), 500u);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_LT(g.label(v), 4u);
    for (NodeId w : g.OutNeighbors(v)) EXPECT_NE(w, v) << "self loop";
  }
}

TEST(GeneratorsTest, ErdosRenyiDeterministicBySeed) {
  Rng a(9), b(9);
  const Graph g1 = ErdosRenyi(50, 200, 3, &a);
  const Graph g2 = ErdosRenyi(50, 200, 3, &b);
  ASSERT_EQ(g1.NumEdges(), g2.NumEdges());
  for (NodeId v = 0; v < 50; ++v) {
    auto o1 = g1.OutNeighbors(v);
    auto o2 = g2.OutNeighbors(v);
    EXPECT_EQ(std::vector<NodeId>(o1.begin(), o1.end()),
              std::vector<NodeId>(o2.begin(), o2.end()));
  }
}

TEST(GeneratorsTest, PreferentialAttachmentIsSkewed) {
  Rng rng(2);
  const Graph g = PreferentialAttachment(2000, 3, 1, &rng);
  EXPECT_EQ(g.NumNodes(), 2000u);
  EXPECT_GT(g.NumEdges(), 2000u);
  // Power-law check (coarse): the max in-degree should dwarf the average.
  std::vector<size_t> in_deg(g.NumNodes(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) ++in_deg[w];
  }
  const size_t max_in = *std::max_element(in_deg.begin(), in_deg.end());
  const double avg_in = static_cast<double>(g.NumEdges()) / g.NumNodes();
  EXPECT_GT(static_cast<double>(max_in), 10.0 * avg_in);
}

TEST(GeneratorsTest, ForestFireDensifies) {
  Rng rng(3);
  const Graph g = ForestFire(1000, 0.35, 1, &rng);
  EXPECT_EQ(g.NumNodes(), 1000u);
  EXPECT_GT(g.NumEdges(), 999u);  // at least one edge per new node
}

TEST(GeneratorsTest, LayeredCitationDagIsAcyclic) {
  Rng rng(4);
  const Graph g = LayeredCitationDag(10, 30, 2, 5, &rng);
  EXPECT_EQ(g.NumNodes(), 300u);
  const SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, g.NumNodes()) << "citation graph has a cycle";
}

TEST(GeneratorsTest, ChainCycleGridShapes) {
  Rng rng(5);
  const Graph chain = Chain(10, 1, &rng);
  EXPECT_EQ(chain.NumEdges(), 9u);
  EXPECT_TRUE(Reaches(chain, 0, 9));
  EXPECT_FALSE(Reaches(chain, 9, 0));

  const Graph cycle = Cycle(10, 1, &rng);
  EXPECT_EQ(cycle.NumEdges(), 10u);
  EXPECT_TRUE(Reaches(cycle, 7, 3));

  const Graph grid = GridGraph(4, 5, 1, &rng);
  EXPECT_EQ(grid.NumNodes(), 20u);
  EXPECT_EQ(grid.NumEdges(), 4 * 4 + 3 * 5u);  // right + down edges
  EXPECT_TRUE(Reaches(grid, 0, 19));
  EXPECT_FALSE(Reaches(grid, 19, 0));
}

TEST(GeneratorsTest, DatasetStandInsScale) {
  Rng rng(6);
  for (Dataset d : Table2Datasets()) {
    Rng local = rng.Fork();
    const Graph g = MakeDataset(d, 0.002, &local);
    EXPECT_GT(g.NumNodes(), 16u) << DatasetName(d);
    EXPECT_GT(g.NumEdges(), 0u) << DatasetName(d);
  }
}

TEST(GeneratorsTest, LabeledDatasetsHaveLabels) {
  Rng rng(7);
  for (Dataset d : RegularDatasets()) {
    Rng local = rng.Fork();
    const Graph g = MakeDataset(d, 0.005, &local);
    bool any_nonzero = false;
    for (NodeId v = 0; v < g.NumNodes() && !any_nonzero; ++v) {
      any_nonzero = g.label(v) != 0;
    }
    EXPECT_TRUE(any_nonzero) << DatasetName(d) << " has no labels";
  }
}

TEST(GeneratorsTest, DatasetNamesMatchPaper) {
  EXPECT_EQ(DatasetName(Dataset::kLiveJournal), "LiveJournal");
  EXPECT_EQ(DatasetName(Dataset::kWikiTalk), "WikiTalk");
  EXPECT_EQ(DatasetName(Dataset::kBerkStan), "BerkStan");
  EXPECT_EQ(DatasetName(Dataset::kNotreDame), "NotreDame");
  EXPECT_EQ(DatasetName(Dataset::kAmazon), "Amazon");
  EXPECT_EQ(DatasetName(Dataset::kCitation), "Citation");
  EXPECT_EQ(DatasetName(Dataset::kMeme), "MEME");
  EXPECT_EQ(DatasetName(Dataset::kYoutube), "Youtube");
  EXPECT_EQ(DatasetName(Dataset::kInternet), "Internet");
}

TEST(GeneratorsTest, ScaleControlsSize) {
  Rng a(8), b(8);
  const Graph small = MakeDataset(Dataset::kAmazon, 0.001, &a);
  const Graph large = MakeDataset(Dataset::kAmazon, 0.004, &b);
  EXPECT_LT(small.NumNodes(), large.NumNodes());
  EXPECT_LT(small.NumEdges(), large.NumEdges());
}

}  // namespace
}  // namespace pereach
