#include "src/core/dis_rpq.h"

#include <functional>

#include <gtest/gtest.h>

#include "src/baselines/centralized.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakeGraph;
using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;

TEST(DisRpqTest, PaperExample8) {
  // q_rr(Ann, Mark, DB* ∪ HR*) is true via the all-HR chain.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  Result<Regex> r = Regex::Parse("DB* | HR*", ex.labels);
  ASSERT_TRUE(r.ok());
  const QueryAnswer a = DisRpq(&cluster, {ex.ann, ex.mark, r.value()});
  EXPECT_TRUE(a.reachable);
  for (size_t v : a.metrics.site_visits) EXPECT_EQ(v, 1u);
  EXPECT_EQ(a.metrics.rounds, 1u);
}

TEST(DisRpqTest, PureDbChainDoesNotExist) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  Result<Regex> r = Regex::Parse("DB*", ex.labels);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(DisRpq(&cluster, {ex.ann, ex.mark, r.value()}).reachable);
}

TEST(DisRpqTest, SecondPaperQueryWaltToMark) {
  // q_rr(Walt, Mark, (CTO DB*) ∪ HR*): Walt -> Mat -> Fred -> Emmy -> Ross
  // -> Mark has interior HR HR HR HR ∈ HR*.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  Result<Regex> r = Regex::Parse("(CTO DB*) | HR*", ex.labels);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(DisRpq(&cluster, {ex.walt, ex.mark, r.value()}).reachable);
}

TEST(DisRpqTest, DirectEdgeNeedsEpsilon) {
  // Ann -> Walt is a single edge: interior is empty, so the query holds iff
  // ε ∈ L(R).
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  Result<Regex> star = Regex::Parse("DB*", ex.labels);
  Result<Regex> plain = Regex::Parse("DB", ex.labels);
  ASSERT_TRUE(star.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(DisRpq(&cluster, {ex.ann, ex.walt, star.value()}).reachable);
  EXPECT_FALSE(DisRpq(&cluster, {ex.ann, ex.walt, plain.value()}).reachable);
}

TEST(DisRpqTest, SourceEqualsTargetNeedsCycle) {
  // s == t requires a cycle of length >= 1; the paper example is acyclic,
  // so the query is false even though trivial reachability would be true.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisRpqAutomaton(&cluster, ex.ann, ex.ann,
                                        QueryAutomaton::WildcardStar());
  EXPECT_FALSE(a.reachable);

  // On a cross-fragment cycle, s == t becomes true.
  Rng rng(1);
  const Graph cyc = Cycle(6, 1, &rng);
  const std::vector<SiteId> part = {0, 1, 0, 1, 0, 1};
  const Fragmentation cfrag = Fragmentation::Build(cyc, part, 2);
  Cluster ccluster(&cfrag, NetworkModel());
  EXPECT_TRUE(DisRpqAutomaton(&ccluster, 2, 2, QueryAutomaton::WildcardStar())
                  .reachable);
}

TEST(DisRpqTest, WildcardEquivalentToPlainReachability) {
  Rng rng(9);
  const Graph g = ErdosRenyi(60, 120, 4, &rng);
  const std::vector<SiteId> part = RandomPartition(60, 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  Cluster cluster(&frag, NetworkModel());
  const QueryAutomaton wildcard = QueryAutomaton::WildcardStar();
  for (int q = 0; q < 40; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(60));
    NodeId t = static_cast<NodeId>(rng.Uniform(60));
    if (t == s) t = (t + 1) % 60;  // s == t differs by design (cycle rule)
    ASSERT_EQ(DisRpqAutomaton(&cluster, s, t, wildcard).reachable,
              CentralizedReach(g, s, t))
        << "s=" << s << " t=" << t;
  }
}

// Independent semantics oracle on tiny DAGs: enumerate *all* paths (they
// are finitely many) and test the interior label word against the regex.
bool BruteForceRegularReach(const Graph& g, NodeId s, NodeId t,
                            const Regex& r) {
  // DFS over paths; graph must be acyclic so this terminates.
  std::vector<LabelId> interior;
  bool found = false;
  const std::function<void(NodeId)> dfs = [&](NodeId v) {
    if (found) return;
    for (NodeId w : g.OutNeighbors(v)) {
      if (w == t && r.Matches(interior)) {
        found = true;
        return;
      }
      interior.push_back(g.label(w));
      dfs(w);
      interior.pop_back();
    }
  };
  dfs(s);
  return found;
}

TEST(DisRpqTest, MatchesBruteForceOnTinyDags) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = LayeredCitationDag(3, 4, 2, 3, &rng);
    const size_t k = 2 + rng.Uniform(3);
    const std::vector<SiteId> part = RandomPartition(g.NumNodes(), k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel());
    const Regex r = Regex::Random(1 + rng.Uniform(5), 3, &rng);
    for (int q = 0; q < 10; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
      const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
      const bool expected = BruteForceRegularReach(g, s, t, r);
      ASSERT_EQ(CentralizedRegularReach(
                    g, s, t, QueryAutomaton::FromRegex(r).value()),
                expected)
          << "centralized oracle drifted from path semantics";
      ASSERT_EQ(DisRpq(&cluster, {s, t, r}).reachable, expected)
          << "s=" << s << " t=" << t;
    }
  }
}

// Property sweep: disRPQ agrees with the centralized product-graph search
// on random labeled (cyclic) graphs, partitions, and regexes.
struct RpqCase {
  std::string name;
  size_t n;
  size_t m_factor;
  size_t k;
  size_t num_labels;
  size_t regex_symbols;
};

class DisRpqPropertyTest : public ::testing::TestWithParam<RpqCase> {};

TEST_P(DisRpqPropertyTest, MatchesCentralized) {
  const RpqCase& c = GetParam();
  Rng rng(3000 + c.n * 13 + c.k);
  for (int graph_trial = 0; graph_trial < 3; ++graph_trial) {
    const Graph g = ErdosRenyi(c.n, c.m_factor * c.n, c.num_labels, &rng);
    const std::vector<SiteId> part = RandomPartition(c.n, c.k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, c.k);
    Cluster cluster(&frag, NetworkModel());
    for (int q = 0; q < 8; ++q) {
      const Regex r = Regex::Random(c.regex_symbols, c.num_labels, &rng);
      const QueryAutomaton a = QueryAutomaton::FromRegex(r).value();
      const NodeId s = static_cast<NodeId>(rng.Uniform(c.n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(c.n));
      const QueryAnswer answer = DisRpqAutomaton(&cluster, s, t, a);
      ASSERT_EQ(answer.reachable, CentralizedRegularReach(g, s, t, a))
          << "s=" << s << " t=" << t << " regex symbols=" << c.regex_symbols;
      for (size_t v : answer.metrics.site_visits) ASSERT_EQ(v, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DisRpqPropertyTest,
    ::testing::Values(
        RpqCase{"tiny", 8, 2, 2, 2, 2}, RpqCase{"small", 30, 2, 3, 3, 4},
        RpqCase{"medium", 60, 2, 4, 4, 6}, RpqCase{"dense", 40, 4, 4, 2, 5},
        RpqCase{"manylabels", 50, 2, 4, 8, 8},
        RpqCase{"manyfrag", 40, 2, 8, 3, 4},
        RpqCase{"bigquery", 40, 2, 4, 3, 12}),
    [](const ::testing::TestParamInfo<RpqCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace pereach
