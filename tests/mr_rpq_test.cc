#include "src/mapreduce/mr_rpq.h"

#include <gtest/gtest.h>

#include "src/baselines/centralized.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;

TEST(MrRpqTest, PaperExampleQuery) {
  const PaperExample ex = MakePaperExample();
  ThreadPool pool(4);
  Result<Regex> r = Regex::Parse("DB* | HR*", ex.labels);
  ASSERT_TRUE(r.ok());
  const QueryAutomaton a = QueryAutomaton::FromRegex(r.value()).value();
  const MapReduceRpqResult res = MapReduceRpqOnGraph(
      ex.graph, ex.ann, ex.mark, a, /*num_mappers=*/3, NetworkModel(), &pool);
  EXPECT_TRUE(res.answer.reachable);
  EXPECT_EQ(res.stats.num_mappers, 3u);
  EXPECT_GT(res.answer.metrics.traffic_bytes, 0u);
}

TEST(MrRpqTest, NegativeQuery) {
  const PaperExample ex = MakePaperExample();
  ThreadPool pool(4);
  Result<Regex> r = Regex::Parse("DB DB DB", ex.labels);
  ASSERT_TRUE(r.ok());
  const MapReduceRpqResult res = MapReduceRpqOnGraph(
      ex.graph, ex.ann, ex.mark, QueryAutomaton::FromRegex(r.value()).value(),
      3, NetworkModel(), &pool);
  EXPECT_FALSE(res.answer.reachable);
}

TEST(MrRpqTest, MatchesCentralizedAcrossMapperCounts) {
  Rng rng(71);
  ThreadPool pool(8);
  const Graph g = ErdosRenyi(80, 240, 3, &rng);
  for (size_t mappers : {1, 2, 5, 10, 16}) {
    for (int q = 0; q < 6; ++q) {
      const QueryAutomaton a =
          QueryAutomaton::FromRegex(Regex::Random(1 + rng.Uniform(6), 3, &rng))
              .value();
      const NodeId s = static_cast<NodeId>(rng.Uniform(80));
      const NodeId t = static_cast<NodeId>(rng.Uniform(80));
      const MapReduceRpqResult res =
          MapReduceRpqOnGraph(g, s, t, a, mappers, NetworkModel(), &pool);
      ASSERT_EQ(res.answer.reachable, CentralizedRegularReach(g, s, t, a))
          << "mappers=" << mappers << " s=" << s << " t=" << t;
    }
  }
}

TEST(MrRpqTest, MatchesDisRpqOnPrebuiltFragmentation) {
  Rng rng(73);
  ThreadPool pool(4);
  const Graph g = ErdosRenyi(60, 150, 4, &rng);
  const std::vector<SiteId> part =
      RandomPartitioner().Partition(g, 5, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 5);
  for (int q = 0; q < 8; ++q) {
    const QueryAutomaton a =
        QueryAutomaton::FromRegex(Regex::Random(1 + rng.Uniform(5), 4, &rng))
            .value();
    const NodeId s = static_cast<NodeId>(rng.Uniform(60));
    const NodeId t = static_cast<NodeId>(rng.Uniform(60));
    const MapReduceRpqResult res =
        MapReduceRpq(frag, s, t, a, NetworkModel(), &pool);
    ASSERT_EQ(res.answer.reachable, CentralizedRegularReach(g, s, t, a));
  }
}

TEST(MrReachTest, MatchesCentralizedReach) {
  Rng rng(79);
  ThreadPool pool(4);
  const Graph g = ErdosRenyi(70, 200, 2, &rng);
  const std::vector<SiteId> part =
      RandomPartitioner().Partition(g, 5, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 5);
  for (int q = 0; q < 20; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(70));
    const NodeId t = static_cast<NodeId>(rng.Uniform(70));
    const MapReduceRpqResult res =
        MapReduceReach(frag, s, t, NetworkModel(), &pool);
    ASSERT_EQ(res.answer.reachable, CentralizedReach(g, s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST(MrBoundedReachTest, MatchesCentralizedDistance) {
  Rng rng(83);
  ThreadPool pool(4);
  const Graph g = ErdosRenyi(60, 150, 2, &rng);
  const std::vector<SiteId> part =
      RandomPartitioner().Partition(g, 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  const uint32_t bound = 6;
  for (int q = 0; q < 20; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(60));
    const NodeId t = static_cast<NodeId>(rng.Uniform(60));
    const MapReduceRpqResult res =
        MapReduceBoundedReach(frag, s, t, bound, NetworkModel(), &pool);
    const uint32_t exact = CentralizedDistance(g, s, t);
    if (exact != kInfDistance && exact <= bound) {
      ASSERT_TRUE(res.answer.reachable) << "s=" << s << " t=" << t;
      ASSERT_EQ(res.answer.distance, exact);
    } else {
      ASSERT_FALSE(res.answer.reachable) << "s=" << s << " t=" << t;
    }
  }
}

TEST(MrRpqTest, EccBoundedByFragmentPlusRvsets) {
  // ECC = max mapper input + reducer input (Afrati-Ullman [1]); both parts
  // must be positive and the modeled time must reflect them.
  const PaperExample ex = MakePaperExample();
  ThreadPool pool(2);
  const MapReduceRpqResult res =
      MapReduceRpqOnGraph(ex.graph, ex.ann, ex.mark,
                          QueryAutomaton::WildcardStar(), 3, NetworkModel(),
                          &pool);
  EXPECT_GT(res.stats.max_mapper_input, 0u);
  EXPECT_GT(res.stats.max_reducer_input, 0u);
  EXPECT_EQ(res.stats.EccBytes(),
            res.stats.max_mapper_input + res.stats.max_reducer_input);
  EXPECT_GT(res.answer.metrics.modeled_ms, 0.0);
}

}  // namespace
}  // namespace pereach
