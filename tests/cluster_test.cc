#include "src/net/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;

TEST(NetworkModelTest, TransferMsScalesWithBytes) {
  NetworkModel net;
  net.bandwidth_mb_per_s = 100.0;
  EXPECT_DOUBLE_EQ(net.TransferMs(0), 0.0);
  EXPECT_DOUBLE_EQ(net.TransferMs(100'000'000), 1000.0);  // 100 MB at 100 MB/s
  EXPECT_DOUBLE_EQ(net.TransferMs(1'000'000), 10.0);
}

TEST(RunMetricsTest, AccumulateAndScaleDown) {
  RunMetrics a, b;
  a.wall_ms = 10;
  a.traffic_bytes = 100;
  a.messages = 4;
  a.rounds = 1;
  a.site_visits = {1, 1};
  b.wall_ms = 30;
  b.traffic_bytes = 300;
  b.messages = 8;
  b.rounds = 3;
  b.site_visits = {2, 0};
  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.wall_ms, 40.0);
  EXPECT_EQ(a.traffic_bytes, 400u);
  EXPECT_EQ(a.site_visits, (std::vector<size_t>{3, 1}));
  a.ScaleDown(2);
  EXPECT_DOUBLE_EQ(a.wall_ms, 20.0);
  EXPECT_EQ(a.traffic_bytes, 200u);
  // Visit averages truncate: {3, 1} / 2 == {1, 0}.
  EXPECT_EQ(a.site_visits, (std::vector<size_t>{1, 0}));
  EXPECT_EQ(a.MaxVisits(), 1u);
}

TEST(RunMetricsTest, SummaryMentionsKeyNumbers) {
  RunMetrics m;
  m.traffic_bytes = 2'000'000;
  m.site_visits = {1, 1, 1};
  const std::string s = m.Summary();
  EXPECT_NE(s.find("2.000MB"), std::string::npos);
  EXPECT_NE(s.find("visits(total=3"), std::string::npos);
}

TEST(ClusterTest, RoundAccountsVisitsTrafficAndRounds) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  NetworkModel net;
  net.latency_ms = 5.0;
  net.bandwidth_mb_per_s = 1.0;  // 1 MB/s so transfer time is visible
  Cluster cluster(&frag, net, /*num_threads=*/2);

  cluster.BeginQuery();
  const auto replies = cluster.RoundAll(
      /*broadcast_bytes=*/10, [](const Fragment& f) {
        return std::vector<uint8_t>(f.site() + 1, 0xFF);  // 1, 2, 3 bytes
      });
  const RunMetrics m = cluster.EndQuery();

  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(m.rounds, 1u);
  EXPECT_EQ(m.site_visits, (std::vector<size_t>{1, 1, 1}));
  // 3 broadcasts of 10B + replies of 1+2+3 bytes.
  EXPECT_EQ(m.traffic_bytes, 30u + 6u);
  EXPECT_EQ(m.messages, 6u);
  // Modeled time >= 2 * latency + transfer(36B).
  EXPECT_GE(m.modeled_ms, 2 * 5.0);
  EXPECT_GT(m.wall_ms, 0.0);
}

TEST(ClusterTest, EmptyRepliesSendNoMessage) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  cluster.BeginQuery();
  cluster.RoundAll(0, [](const Fragment&) { return std::vector<uint8_t>(); });
  const RunMetrics m = cluster.EndQuery();
  EXPECT_EQ(m.messages, 3u);  // only the broadcasts
  EXPECT_EQ(m.traffic_bytes, 0u);
}

TEST(ClusterTest, SubsetRoundOnlyVisitsListedSites) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  cluster.BeginQuery();
  cluster.Round({1}, 4, [](const Fragment& f) {
    EXPECT_EQ(f.site(), 1u);
    return std::vector<uint8_t>{1};
  });
  const RunMetrics m = cluster.EndQuery();
  EXPECT_EQ(m.site_visits, (std::vector<size_t>{0, 1, 0}));
}

// Each BeginQuery..EndQuery window keeps its own books: a second window on
// the same cluster starts from zero, not from the first window's totals.
TEST(ClusterTest, EachWindowStartsFromZero) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  cluster.BeginQuery();
  cluster.RoundAll(8, [](const Fragment&) { return std::vector<uint8_t>{1}; });
  const RunMetrics first = cluster.EndQuery();
  EXPECT_GT(first.traffic_bytes, 0u);
  cluster.BeginQuery();
  const RunMetrics second = cluster.EndQuery();
  EXPECT_EQ(second.traffic_bytes, 0u);
  EXPECT_EQ(second.rounds, 0u);
  EXPECT_EQ(second.TotalVisits(), 0u);
}

TEST(ClusterTest, RecordersAccumulate) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  NetworkModel net;
  net.latency_ms = 1.0;
  Cluster cluster(&frag, net);
  cluster.BeginQuery();
  cluster.RecordVisits(0, 5);
  cluster.RecordVisits(2, 1);
  cluster.RecordTraffic(1000, 10);
  cluster.RecordModeledRound(3.0, 1000);
  cluster.AddCoordinatorWorkMs(2.0);
  const RunMetrics m = cluster.EndQuery();
  EXPECT_EQ(m.site_visits, (std::vector<size_t>{5, 0, 1}));
  EXPECT_EQ(m.traffic_bytes, 1000u);
  EXPECT_EQ(m.messages, 10u);
  EXPECT_EQ(m.rounds, 1u);
  EXPECT_GE(m.modeled_ms, 2.0 + 3.0 + 2.0);  // 2*latency + compute + coord
}

// Metrics windows are per-thread: overlapping windows on one cluster must
// each see exactly their own rounds/traffic (the QueryServer's per-class
// dispatchers batch concurrently over a shared cluster). Also the TSan
// target for the window bookkeeping.
TEST(ClusterTest, ConcurrentWindowsKeepSeparateBooks) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel(), /*num_threads=*/4);

  constexpr size_t kThreads = 4;
  std::vector<RunMetrics> results(kThreads);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cluster, &results, i] {
      cluster.BeginQuery();
      // Thread i runs i+1 rounds with broadcasts of i+1 bytes, so every
      // window has a distinct signature.
      for (size_t r = 0; r <= i; ++r) {
        cluster.RoundAll(i + 1, [](const Fragment&) {
          return std::vector<uint8_t>{0xAB};
        });
      }
      cluster.SetQueriesServed(i + 1);
      results[i] = cluster.EndQuery();
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(results[i].rounds, i + 1) << "thread " << i;
    // Per round: 3 broadcasts of (i+1) bytes + 3 one-byte replies.
    EXPECT_EQ(results[i].traffic_bytes, (i + 1) * (3 * (i + 1) + 3))
        << "thread " << i;
    EXPECT_EQ(results[i].queries, i + 1) << "thread " << i;
    EXPECT_EQ(results[i].TotalVisits(), 3 * (i + 1)) << "thread " << i;
  }
}

// Concurrent ParallelFor calls from distinct threads each complete exactly
// their own index set (per-call latch, not the pool-wide drain).
TEST(ClusterTest, ConcurrentParallelForCallsStayIsolated) {
  ThreadPool pool(4);
  static constexpr size_t kCallers = 4, kN = 64;
  std::vector<std::atomic<size_t>> counts(kCallers);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &counts, c] {
      pool.ParallelFor(kN, [&counts, c](size_t) {
        counts[c].fetch_add(1, std::memory_order_relaxed);
      });
      // The latch guarantees all kN iterations ran before return.
      EXPECT_EQ(counts[c].load(), kN);
    });
  }
  for (std::thread& t : callers) t.join();
}

TEST(ClusterTest, ParallelRoundRunsAllFragments) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel(), /*num_threads=*/3);
  std::atomic<int> calls{0};
  cluster.BeginQuery();
  cluster.RoundAll(0, [&calls](const Fragment&) {
    calls.fetch_add(1);
    return std::vector<uint8_t>();
  });
  cluster.EndQuery();
  EXPECT_EQ(calls.load(), 3);
}

}  // namespace
}  // namespace pereach
