// Unit tests for the ServerMetrics registry: counter/gauge/histogram
// mechanics, percentile estimation on the geometric buckets, the
// name/type/unit catalog, and the JSON export (the operations surface
// documented in docs/OPERATIONS.md).

#include "src/server/server_metrics.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace pereach {
namespace {

TEST(ServerMetricsTest, CountersAccumulateAndImport) {
  ServerMetrics metrics;
  metrics.AddCounter(CounterId::kQueriesSubmitted);
  metrics.AddCounter(CounterId::kQueriesSubmitted, 4);
  metrics.SetCounter(CounterId::kCacheHits, 17);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counter(CounterId::kQueriesSubmitted), 5u);
  EXPECT_EQ(snap.counter(CounterId::kCacheHits), 17u);
  EXPECT_EQ(snap.counter(CounterId::kQueriesRejected), 0u);
}

TEST(ServerMetricsTest, GaugesHoldTheLastSample) {
  ServerMetrics metrics;
  metrics.SetGauge(GaugeId::kEpoch, 3.0);
  metrics.SetGauge(GaugeId::kEpoch, 7.0);
  metrics.SetGauge(GaugeId::kCacheBytes, 1024.0);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.gauge(GaugeId::kEpoch), 7.0);
  EXPECT_EQ(snap.gauge(GaugeId::kCacheBytes), 1024.0);
}

TEST(ServerMetricsTest, HistogramTracksExactMomentsAndEstimatesQuantiles) {
  ServerMetrics metrics;
  // 100 observations 1..100: count/sum/min/max are exact; the percentile
  // estimates land within the power-of-two bucket of the true quantile.
  double sum = 0;
  for (int i = 1; i <= 100; ++i) {
    metrics.Observe(HistogramId::kBatchSize, static_cast<double>(i));
    sum += i;
  }
  const HistogramSnapshot h =
      metrics.Snapshot().histogram(HistogramId::kBatchSize);
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.sum, sum);
  EXPECT_EQ(h.min, 1.0);
  EXPECT_EQ(h.max, 100.0);
  // True p50 = 50 lives in bucket (32, 64]; p99 = 99 in (64, 128] but the
  // estimate is clamped to the observed max.
  EXPECT_GE(h.p50, 32.0);
  EXPECT_LE(h.p50, 64.0);
  EXPECT_GE(h.p90, h.p50);
  EXPECT_GE(h.p99, h.p90);
  EXPECT_LE(h.p99, h.max);
}

TEST(ServerMetricsTest, HistogramQuantilesClampToObservedRange) {
  ServerMetrics metrics;
  metrics.Observe(HistogramId::kWallMsReach, 3.5);
  const HistogramSnapshot h =
      metrics.Snapshot().histogram(HistogramId::kWallMsReach);
  EXPECT_EQ(h.count, 1u);
  // One observation: every percentile IS that observation.
  EXPECT_EQ(h.p50, 3.5);
  EXPECT_EQ(h.p99, 3.5);
}

TEST(ServerMetricsTest, HistogramHandlesOutOfBucketRangeValues) {
  ServerMetrics metrics;
  metrics.Observe(HistogramId::kModeledMsRpq, 0.0);         // below 2^-10
  metrics.Observe(HistogramId::kModeledMsRpq, 1 << 30);     // overflow bucket
  const HistogramSnapshot h =
      metrics.Snapshot().histogram(HistogramId::kModeledMsRpq);
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.min, 0.0);
  EXPECT_EQ(h.max, static_cast<double>(1 << 30));
  EXPECT_GE(h.p99, h.p50);
  EXPECT_LE(h.p99, h.max);
}

TEST(ServerMetricsTest, CatalogCoversEveryIdWithUniqueWellFormedNames) {
  EXPECT_EQ(CounterInfos().size(), static_cast<size_t>(CounterId::kCount));
  EXPECT_EQ(GaugeInfos().size(), static_cast<size_t>(GaugeId::kCount));
  EXPECT_EQ(HistogramInfos().size(),
            static_cast<size_t>(HistogramId::kCount));
  std::set<std::string> names;
  for (const MetricInfo& info : CounterInfos()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_EQ(std::string(info.type), "counter") << info.name;
    // Counter naming convention: monotonic series end in _total.
    EXPECT_NE(std::string(info.name).find("_total"), std::string::npos)
        << info.name;
    EXPECT_NE(std::string(info.help), "") << info.name;
  }
  for (const MetricInfo& info : GaugeInfos()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_EQ(std::string(info.type), "gauge") << info.name;
    EXPECT_NE(std::string(info.help), "") << info.name;
  }
  for (const MetricInfo& info : HistogramInfos()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_EQ(std::string(info.type), "histogram") << info.name;
    EXPECT_NE(std::string(info.help), "") << info.name;
  }
  for (const std::string& name : names) {
    EXPECT_EQ(name.rfind("server_", 0), 0u)
        << name << " missing the server_ prefix";
  }
}

TEST(ServerMetricsTest, TransportRecoveryMetricsAreCataloged) {
  // The self-healing transport's counters/gauge (DESIGN.md §13) are part of
  // the stable operations surface: pin the exported names to their ids.
  EXPECT_EQ(std::string(
                CounterInfos()[static_cast<size_t>(CounterId::kTransportRetries)]
                    .name),
            "server_transport_retries_total");
  EXPECT_EQ(std::string(CounterInfos()[static_cast<size_t>(
                                           CounterId::kTransportRespawns)]
                            .name),
            "server_transport_respawns_total");
  EXPECT_EQ(std::string(CounterInfos()[static_cast<size_t>(
                                           CounterId::kTransportDegraded)]
                            .name),
            "server_transport_degraded_total");
  EXPECT_EQ(
      std::string(
          GaugeInfos()[static_cast<size_t>(GaugeId::kBreakersOpen)].name),
      "server_transport_breakers_open");
  // They export like any other metric.
  ServerMetrics metrics;
  metrics.AddCounter(CounterId::kTransportRetries, 2);
  metrics.SetGauge(GaugeId::kBreakersOpen, 1.0);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counter(CounterId::kTransportRetries), 2u);
  EXPECT_EQ(snap.gauge(GaugeId::kBreakersOpen), 1.0);
  EXPECT_NE(snap.ToJson().find("\"server_transport_retries_total\": 2"),
            std::string::npos);
}

TEST(ServerMetricsTest, JsonSnapshotIsStructurallySoundAndComplete) {
  ServerMetrics metrics;
  metrics.AddCounter(CounterId::kBatches, 3);
  metrics.SetGauge(GaugeId::kQueueDepthReach, 2.0);
  metrics.Observe(HistogramId::kBatchSize, 8.0);
  const std::string json = metrics.Snapshot().ToJson();

  // Every cataloged name appears exactly once, quoted as a JSON key.
  for (const auto& infos : {CounterInfos(), GaugeInfos(), HistogramInfos()}) {
    for (const MetricInfo& info : infos) {
      const std::string quoted = std::string("\"") + info.name + "\":";
      const size_t first = json.find(quoted);
      ASSERT_NE(first, std::string::npos) << info.name;
      EXPECT_EQ(json.find(quoted, first + 1), std::string::npos) << info.name;
    }
  }
  // Balanced braces and the three sections, in order.
  size_t depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') {
      ASSERT_GT(depth, 0u) << "unbalanced at offset " << i;
      --depth;
    }
  }
  EXPECT_EQ(depth, 0u);
  EXPECT_FALSE(in_string);
  const size_t counters_at = json.find("\"counters\"");
  const size_t gauges_at = json.find("\"gauges\"");
  const size_t histograms_at = json.find("\"histograms\"");
  ASSERT_NE(counters_at, std::string::npos);
  ASSERT_NE(gauges_at, std::string::npos);
  ASSERT_NE(histograms_at, std::string::npos);
  EXPECT_LT(counters_at, gauges_at);
  EXPECT_LT(gauges_at, histograms_at);
  EXPECT_NE(json.find("\"server_batches_total\": 3"), std::string::npos);
}

}  // namespace
}  // namespace pereach
