#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace pereach {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad regex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad regex");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad regex");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::Corruption("x").ToString(), "Corruption: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(1000), b.Uniform(1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 50; ++i) {
    any_diff |= (a.Uniform(1u << 30) != b.Uniform(1u << 30));
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformRange(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, GeometricIsAtLeastOne) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) EXPECT_GE(rng.Geometric(0.5), 1u);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(77), b(77);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.Uniform(100), fb.Uniform(100));
}

// ---------------------------------------------------------------------------
// StopWatch
// ---------------------------------------------------------------------------

TEST(StopWatchTest, MonotoneNonNegative) {
  StopWatch w;
  const double t1 = w.ElapsedMs();
  const double t2 = w.ElapsedMs();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_GE(w.ElapsedUs(), t2 * 1000.0 * 0.5);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForWithMoreWorkersThanItems) {
  ThreadPool pool(16);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(50,
                   [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 49 * 50 / 2);
}

TEST(ThreadPoolTest, SequentialParallelForsReusePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> counter{0};
    pool.ParallelFor(64, [&counter](size_t) { counter.fetch_add(1); });
    ASSERT_EQ(counter.load(), 64);
  }
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  pool.ParallelFor(4, [&](size_t) {
    const int now = concurrent.fetch_add(1) + 1;
    int expected = max_seen.load();
    while (now > expected && !max_seen.compare_exchange_weak(expected, now)) {
    }
    // Give other workers a chance to overlap.
    StopWatch w;
    while (w.ElapsedMs() < 20.0) {
    }
    concurrent.fetch_sub(1);
  });
  EXPECT_GE(max_seen.load(), 2) << "no overlap observed on a 4-thread pool";
}

}  // namespace
}  // namespace pereach
