// Unit tests for the serving layer's cache-key and answer-cache building
// blocks: CanonicalQueryKey soundness properties (DESIGN.md §11.1) and the
// AnswerCache's LRU / budget / epoch-invalidation mechanics.

#include "src/server/answer_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/query_key.h"
#include "src/regex/canonical.h"
#include "src/regex/regex.h"

namespace pereach {
namespace {

// ---------------------------------------------------------------------------
// CanonicalQueryKey

QueryKey KeyOf(const Query& q) { return CanonicalQueryKey(q); }

TEST(CanonicalQueryKeyTest, ReachKeyDeterminedByEndpointsOnly) {
  EXPECT_EQ(KeyOf(Query::Reach(3, 7)), KeyOf(Query::Reach(3, 7)));
  EXPECT_NE(KeyOf(Query::Reach(3, 7)), KeyOf(Query::Reach(7, 3)));
  EXPECT_NE(KeyOf(Query::Reach(3, 7)), KeyOf(Query::Reach(3, 8)));
}

TEST(CanonicalQueryKeyTest, QueryClassesNeverCollide) {
  // Same endpoints, different class (or bound) => different answers are
  // possible, so the keys must differ.
  const QueryKey reach = KeyOf(Query::Reach(3, 7));
  const QueryKey dist = KeyOf(Query::Dist(3, 7, 5));
  EXPECT_NE(reach, dist);
  EXPECT_NE(dist, KeyOf(Query::Dist(3, 7, 6)));
}

TEST(CanonicalQueryKeyTest, RpqPhrasingsOfOneLanguageShareAKey) {
  LabelDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  const auto key_for = [&](const std::string& pattern) {
    return KeyOf(Query::Rpq(3, 7, Regex::Parse(pattern, dict).value()));
  };
  // Duplicated-branch phrasings canonicalize together (the minimized
  // Glushkov form merges interior states with equal right languages; fully
  // general equivalence is best-effort — see src/regex/canonical.h)...
  EXPECT_EQ(key_for("a"), key_for("a | a"));
  EXPECT_EQ(key_for("a b"), key_for("a b | a b"));
  // ...different languages never do...
  EXPECT_NE(key_for("a"), key_for("b"));
  EXPECT_NE(key_for("a"), key_for("a a"));
  // ...and the endpoints still discriminate.
  EXPECT_NE(key_for("a"),
            KeyOf(Query::Rpq(3, 8, Regex::Parse("a", dict).value())));
}

TEST(CanonicalQueryKeyTest, HashIsTheSignatureHashOfTheBytes) {
  const QueryKey key = KeyOf(Query::Reach(11, 29));
  EXPECT_EQ(key.hash, SignatureHash(key.bytes));
}

// ---------------------------------------------------------------------------
// AnswerCache

QueryKey TestKey(NodeId s, NodeId t) {
  return CanonicalQueryKey(Query::Reach(s, t));
}

TEST(AnswerCacheTest, DisabledCacheNeverHitsAndCountsNothing) {
  AnswerCache cache({.enabled = false});
  cache.Insert(TestKey(0, 1), 0, {true, 0});
  EXPECT_FALSE(cache.Lookup(TestKey(0, 1), 0).has_value());
  EXPECT_EQ(cache.entries(), 0u);
  const AnswerCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.misses, 0u);  // disabled lookups are not misses
  EXPECT_EQ(counters.insertions, 0u);
}

TEST(AnswerCacheTest, HitRequiresKeyAndEpochToMatch) {
  AnswerCache cache({.enabled = true});
  cache.Insert(TestKey(0, 1), 0, {true, 3});
  const std::optional<CachedAnswer> hit = cache.Lookup(TestKey(0, 1), 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->reachable);
  EXPECT_EQ(hit->distance, 3u);
  EXPECT_FALSE(cache.Lookup(TestKey(0, 2), 0).has_value());  // wrong key
  EXPECT_FALSE(cache.Lookup(TestKey(0, 1), 1).has_value());  // wrong epoch
  const AnswerCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 2u);
}

TEST(AnswerCacheTest, EpochAdvanceDropsEverythingAndAdoptsNewEpoch) {
  AnswerCache cache({.enabled = true});
  cache.Insert(TestKey(0, 1), 0, {false, 0});
  cache.Insert(TestKey(1, 2), 0, {true, 1});
  EXPECT_EQ(cache.entries(), 2u);
  cache.OnEpochAdvance(1);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.counters().invalidated, 2u);
  // Stale writes from a batch that drained pre-commit are dropped...
  cache.Insert(TestKey(2, 3), 0, {true, 0});
  EXPECT_EQ(cache.entries(), 0u);
  // ...while current-epoch writes land and serve.
  cache.Insert(TestKey(2, 3), 1, {true, 0});
  EXPECT_TRUE(cache.Lookup(TestKey(2, 3), 1).has_value());
}

TEST(AnswerCacheTest, EntryBudgetEvictsLeastRecentlyUsed) {
  AnswerCache cache({.enabled = true, .max_entries = 2, .max_bytes = 0});
  cache.Insert(TestKey(0, 1), 0, {true, 0});
  cache.Insert(TestKey(1, 2), 0, {true, 0});
  // Touch (0,1) so (1,2) is the LRU victim of the next insertion.
  EXPECT_TRUE(cache.Lookup(TestKey(0, 1), 0).has_value());
  cache.Insert(TestKey(2, 3), 0, {true, 0});
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(TestKey(0, 1), 0).has_value());
  EXPECT_FALSE(cache.Lookup(TestKey(1, 2), 0).has_value());
  EXPECT_TRUE(cache.Lookup(TestKey(2, 3), 0).has_value());
}

TEST(AnswerCacheTest, ByteBudgetArithmeticGovernsEviction) {
  const QueryKey a = TestKey(0, 1);
  const QueryKey b = TestKey(1, 2);
  const QueryKey c = TestKey(2, 3);
  // Reach keys of small node ids are all the same length, so the charged
  // size per entry is fixed and the budget arithmetic is exact.
  ASSERT_EQ(a.bytes.size(), b.bytes.size());
  ASSERT_EQ(a.bytes.size(), c.bytes.size());
  const size_t per_entry = a.bytes.size() + AnswerCache::kEntryOverheadBytes;

  // Budget for exactly two entries: the third insertion must evict one.
  AnswerCache cache(
      {.enabled = true, .max_entries = 0, .max_bytes = 2 * per_entry});
  cache.Insert(a, 0, {true, 0});
  cache.Insert(b, 0, {true, 0});
  EXPECT_EQ(cache.bytes(), 2 * per_entry);
  EXPECT_EQ(cache.counters().evictions, 0u);
  cache.Insert(c, 0, {true, 0});
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.bytes(), 2 * per_entry);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_FALSE(cache.Lookup(a, 0).has_value());  // LRU victim
  EXPECT_TRUE(cache.Lookup(b, 0).has_value());
  EXPECT_TRUE(cache.Lookup(c, 0).has_value());
}

TEST(AnswerCacheTest, DuplicateInsertRefreshesInsteadOfGrowing) {
  AnswerCache cache({.enabled = true, .max_entries = 2, .max_bytes = 0});
  cache.Insert(TestKey(0, 1), 0, {false, 0});
  cache.Insert(TestKey(1, 2), 0, {true, 0});
  // Re-inserting (0,1) must refresh recency, not add a third entry — so the
  // next insertion evicts (1,2), not (0,1).
  cache.Insert(TestKey(0, 1), 0, {false, 0});
  EXPECT_EQ(cache.entries(), 2u);
  cache.Insert(TestKey(2, 3), 0, {true, 0});
  EXPECT_TRUE(cache.Lookup(TestKey(0, 1), 0).has_value());
  EXPECT_FALSE(cache.Lookup(TestKey(1, 2), 0).has_value());
}

}  // namespace
}  // namespace pereach
