#include "src/util/serialization.h"

#include <gtest/gtest.h>

#include "src/core/local_eval.h"
#include "src/util/random.h"

namespace pereach {
namespace {

TEST(SerializationTest, PrimitivesRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutDouble(3.14159);
  enc.PutString("hello");
  enc.PutString("");

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetU8(), 0xAB);
  EXPECT_EQ(dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(dec.GetDouble(), 3.14159);
  EXPECT_EQ(dec.GetString(), "hello");
  EXPECT_EQ(dec.GetString(), "");
  EXPECT_TRUE(dec.Done());
}

TEST(SerializationTest, VarintBoundaries) {
  const std::vector<uint64_t> values = {
      0,   1,    127,        128,         16383,      16384,
      ~0u, 1u << 31, uint64_t{1} << 32, uint64_t{1} << 63, ~uint64_t{0}};
  Encoder enc;
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.buffer());
  for (uint64_t v : values) EXPECT_EQ(dec.GetVarint(), v);
  EXPECT_TRUE(dec.Done());
}

TEST(SerializationTest, VarintIsCompactForSmallValues) {
  Encoder enc;
  enc.PutVarint(5);
  EXPECT_EQ(enc.size(), 1u);
  enc.PutVarint(127);
  EXPECT_EQ(enc.size(), 2u);
  enc.PutVarint(128);
  EXPECT_EQ(enc.size(), 4u);  // two bytes for 128
}

TEST(SerializationTest, BitsetRoundTrip) {
  Bitset b(77);
  b.Set(0);
  b.Set(7);
  b.Set(8);
  b.Set(63);
  b.Set(64);
  b.Set(76);
  Encoder enc;
  enc.PutBitset(b);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetBitset(), b);
  EXPECT_TRUE(dec.Done());
}

TEST(SerializationTest, BitsetWireSizeIsCeilBitsOver8) {
  // The paper's traffic bound counts |F_i.O| bits per equation; verify the
  // codec stays within one varint of that.
  Bitset b(1000);
  for (size_t i = 0; i < 1000; i += 2) b.Set(i);
  Encoder enc;
  enc.PutBitset(b);
  EXPECT_LE(enc.size(), 1000 / 8 + 3u);
}

TEST(SerializationTest, EmptyBitsetRoundTrip) {
  Bitset b(0);
  Encoder enc;
  enc.PutBitset(b);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetBitset().size(), 0u);
  EXPECT_TRUE(dec.Done());
}

TEST(SerializationTest, RandomBitsetsRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = rng.Uniform(500);
    Bitset b(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) b.Set(i);
    }
    Encoder enc;
    enc.PutBitset(b);
    Decoder dec(enc.buffer());
    EXPECT_EQ(dec.GetBitset(), b);
  }
}

TEST(SerializationTest, MixedRandomStreamRoundTrips) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint64_t> varints;
    std::vector<std::string> strings;
    Encoder enc;
    for (int i = 0; i < 100; ++i) {
      const uint64_t v = rng.engine()();
      varints.push_back(v);
      enc.PutVarint(v);
      std::string s;
      const size_t len = rng.Uniform(20);
      for (size_t c = 0; c < len; ++c) {
        s.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      strings.push_back(s);
      enc.PutString(s);
    }
    Decoder dec(enc.buffer());
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(dec.GetVarint(), varints[i]);
      EXPECT_EQ(dec.GetString(), strings[i]);
    }
    EXPECT_TRUE(dec.Done());
  }
}

TEST(SerializationTest, TakeBufferMovesContent) {
  Encoder enc;
  enc.PutU32(42);
  std::vector<uint8_t> buf = enc.TakeBuffer();
  EXPECT_EQ(buf.size(), 4u);
  Decoder dec(buf);
  EXPECT_EQ(dec.GetU32(), 42u);
}

TEST(SerializationTest, FramesRoundTrip) {
  Encoder inner1, inner2;
  inner1.PutVarint(1234);
  inner2.PutString("frame two");
  Encoder enc;
  enc.PutFrame(inner1.buffer());
  enc.PutFrame(inner2.buffer());
  enc.PutFrame({});  // empty frame

  Decoder dec(enc.buffer());
  Decoder f1 = dec.GetFrame();
  EXPECT_EQ(f1.GetVarint(), 1234u);
  EXPECT_TRUE(f1.Done());
  Decoder f2 = dec.GetFrame();
  EXPECT_EQ(f2.GetString(), "frame two");
  EXPECT_TRUE(f2.Done());
  Decoder f3 = dec.GetFrame();
  EXPECT_TRUE(f3.Done());
  EXPECT_TRUE(dec.Done());
}

// Regression: a declared string length near SIZE_MAX used to overflow the
// `pos + n` bounds check and read out of range; the remaining()-relative
// check must abort cleanly instead.
TEST(SerializationDeathTest, HugeStringLengthAbortsWithoutOverflow) {
  Encoder enc;
  enc.PutVarint(~uint64_t{0});  // length that would wrap pos_ + n
  enc.PutU8(0);
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf);
  EXPECT_DEATH(dec.GetString(), "CHECK failed");
}

// Regression: a malformed bitset bit-count must abort before allocating,
// not attempt a multi-gigabyte Bitset.
TEST(SerializationDeathTest, HugeBitsetLengthAbortsBeforeAllocation) {
  Encoder enc;
  enc.PutVarint(uint64_t{1} << 60);
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf);
  EXPECT_DEATH(dec.GetBitset(), "CHECK failed");
}

// Regression: a bit count near UINT64_MAX used to wrap (num_bits + 7) / 8
// to zero bytes and slip past the bounds check, returning a corrupt bitset
// claiming 2^64-1 bits backed by no words.
TEST(SerializationDeathTest, OverflowingBitsetLengthAborts) {
  Encoder enc;
  enc.PutVarint(~uint64_t{0});
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf);
  EXPECT_DEATH(dec.GetBitset(), "CHECK failed");
}

// Regression: element counts are validated against the remaining payload
// before any container resize (a corrupted count used to surface as
// bad_alloc far from the decode site).
TEST(SerializationDeathTest, CountExceedingPayloadAborts) {
  Encoder enc;
  enc.PutVarint(1000);  // claims 1000 elements, provides 2 bytes
  enc.PutU8(1);
  enc.PutU8(2);
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf);
  EXPECT_DEATH((void)dec.GetCount(), "CHECK failed");
}

TEST(SerializationTest, CountWithinPayloadSucceeds) {
  Encoder enc;
  enc.PutVarint(3);
  enc.PutU8(1);
  enc.PutU8(2);
  enc.PutU8(3);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetCount(), 3u);
  EXPECT_EQ(dec.remaining(), 3u);
}

TEST(SerializationDeathTest, TruncatedFrameAborts) {
  Encoder enc;
  enc.PutVarint(50);  // frame claims 50 bytes, provides 1
  enc.PutU8(9);
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf);
  EXPECT_DEATH((void)dec.GetFrame(), "CHECK failed");
}

// A frame decoder is confined to its slice: reads past the frame end abort
// even though the outer buffer continues.
TEST(SerializationDeathTest, FrameDecoderCannotReadPastFrameEnd) {
  Encoder inner;
  inner.PutU8(1);
  Encoder enc;
  enc.PutFrame(inner.buffer());
  enc.PutU32(0xDEADBEEF);  // outer bytes after the frame
  const std::vector<uint8_t> buf = enc.buffer();
  Decoder dec(buf);
  Decoder frame = dec.GetFrame();
  EXPECT_EQ(frame.GetU8(), 1u);
  EXPECT_DEATH((void)frame.GetU8(), "CHECK failed");
}

// End-to-end: a reply payload whose equation count was corrupted to exceed
// the remaining bytes aborts in the decoder bounds checks instead of
// fabricating equations or resizing to a bogus size.
TEST(SerializationDeathTest, MalformedReplyPayloadFailsCleanly) {
  Encoder enc;
  enc.PutVarint(0);    // site
  enc.PutVarint(3);    // oset count
  for (int i = 0; i < 3; ++i) enc.PutVarint(10 + i);
  enc.PutVarint(0);    // no aliases
  enc.PutVarint(200);  // corrupt equation count, only 0 bytes follow
  const std::vector<uint8_t> payload = enc.buffer();
  Decoder dec(payload);
  EXPECT_DEATH(ReachPartialAnswer::Deserialize(&dec), "CHECK failed");
}

}  // namespace
}  // namespace pereach
