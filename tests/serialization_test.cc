#include "src/util/serialization.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace pereach {
namespace {

TEST(SerializationTest, PrimitivesRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutDouble(3.14159);
  enc.PutString("hello");
  enc.PutString("");

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetU8(), 0xAB);
  EXPECT_EQ(dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(dec.GetDouble(), 3.14159);
  EXPECT_EQ(dec.GetString(), "hello");
  EXPECT_EQ(dec.GetString(), "");
  EXPECT_TRUE(dec.Done());
}

TEST(SerializationTest, VarintBoundaries) {
  const std::vector<uint64_t> values = {
      0,   1,    127,        128,         16383,      16384,
      ~0u, 1u << 31, uint64_t{1} << 32, uint64_t{1} << 63, ~uint64_t{0}};
  Encoder enc;
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.buffer());
  for (uint64_t v : values) EXPECT_EQ(dec.GetVarint(), v);
  EXPECT_TRUE(dec.Done());
}

TEST(SerializationTest, VarintIsCompactForSmallValues) {
  Encoder enc;
  enc.PutVarint(5);
  EXPECT_EQ(enc.size(), 1u);
  enc.PutVarint(127);
  EXPECT_EQ(enc.size(), 2u);
  enc.PutVarint(128);
  EXPECT_EQ(enc.size(), 4u);  // two bytes for 128
}

TEST(SerializationTest, BitsetRoundTrip) {
  Bitset b(77);
  b.Set(0);
  b.Set(7);
  b.Set(8);
  b.Set(63);
  b.Set(64);
  b.Set(76);
  Encoder enc;
  enc.PutBitset(b);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetBitset(), b);
  EXPECT_TRUE(dec.Done());
}

TEST(SerializationTest, BitsetWireSizeIsCeilBitsOver8) {
  // The paper's traffic bound counts |F_i.O| bits per equation; verify the
  // codec stays within one varint of that.
  Bitset b(1000);
  for (size_t i = 0; i < 1000; i += 2) b.Set(i);
  Encoder enc;
  enc.PutBitset(b);
  EXPECT_LE(enc.size(), 1000 / 8 + 3u);
}

TEST(SerializationTest, EmptyBitsetRoundTrip) {
  Bitset b(0);
  Encoder enc;
  enc.PutBitset(b);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetBitset().size(), 0u);
  EXPECT_TRUE(dec.Done());
}

TEST(SerializationTest, RandomBitsetsRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = rng.Uniform(500);
    Bitset b(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) b.Set(i);
    }
    Encoder enc;
    enc.PutBitset(b);
    Decoder dec(enc.buffer());
    EXPECT_EQ(dec.GetBitset(), b);
  }
}

TEST(SerializationTest, MixedRandomStreamRoundTrips) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint64_t> varints;
    std::vector<std::string> strings;
    Encoder enc;
    for (int i = 0; i < 100; ++i) {
      const uint64_t v = rng.engine()();
      varints.push_back(v);
      enc.PutVarint(v);
      std::string s;
      const size_t len = rng.Uniform(20);
      for (size_t c = 0; c < len; ++c) {
        s.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      strings.push_back(s);
      enc.PutString(s);
    }
    Decoder dec(enc.buffer());
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(dec.GetVarint(), varints[i]);
      EXPECT_EQ(dec.GetString(), strings[i]);
    }
    EXPECT_TRUE(dec.Done());
  }
}

TEST(SerializationTest, TakeBufferMovesContent) {
  Encoder enc;
  enc.PutU32(42);
  std::vector<uint8_t> buf = enc.TakeBuffer();
  EXPECT_EQ(buf.size(), 4u);
  Decoder dec(buf);
  EXPECT_EQ(dec.GetU32(), 42u);
}

}  // namespace
}  // namespace pereach
