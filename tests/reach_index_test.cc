#include "src/index/reach_index.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakeGraph;

enum class Kind { kBfs, kMatrix, kInterval, kTwoHop };

std::unique_ptr<ReachabilityIndex> Build(Kind kind, const Graph& g, Rng* rng) {
  switch (kind) {
    case Kind::kBfs:
      return BuildBfsIndex(g);
    case Kind::kMatrix:
      return BuildReachMatrix(g);
    case Kind::kInterval:
      return BuildIntervalIndex(g, 3, rng);
    case Kind::kTwoHop:
      return BuildTwoHopIndex(g);
  }
  return nullptr;
}

class ReachIndexTest : public ::testing::TestWithParam<Kind> {};

TEST_P(ReachIndexTest, ChainCycleAndDisconnect) {
  Rng rng(1);
  const Graph g = MakeGraph(
      7, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {5, 6}});
  const auto index = Build(GetParam(), g, &rng);
  // Inside the cycle.
  EXPECT_TRUE(index->Reaches(0, 2));
  EXPECT_TRUE(index->Reaches(2, 1));
  // Out of the cycle, forward only.
  EXPECT_TRUE(index->Reaches(0, 4));
  EXPECT_FALSE(index->Reaches(4, 0));
  // Disconnected island.
  EXPECT_TRUE(index->Reaches(5, 6));
  EXPECT_FALSE(index->Reaches(0, 5));
  EXPECT_FALSE(index->Reaches(6, 5));
  // Reflexive.
  EXPECT_TRUE(index->Reaches(4, 4));
}

TEST_P(ReachIndexTest, MatchesTransitiveClosureOnRandomGraphs) {
  Rng rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    const size_t n = 3 + rng.Uniform(60);
    const Graph g = ErdosRenyi(n, 2 * n, 1, &rng);
    const auto index = Build(GetParam(), g, &rng);
    const std::vector<Bitset> tc = TransitiveClosure(g);
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId t = 0; t < n; ++t) {
        ASSERT_EQ(index->Reaches(s, t), tc[s].Test(t))
            << index->name() << " s=" << s << " t=" << t << " n=" << n;
      }
    }
  }
}

TEST_P(ReachIndexTest, MatchesBfsOnStructuredGraphs) {
  Rng rng(13);
  const std::vector<Graph> graphs = [&] {
    std::vector<Graph> gs;
    gs.push_back(Chain(40, 1, &rng));
    gs.push_back(Cycle(30, 1, &rng));
    gs.push_back(GridGraph(5, 8, 1, &rng));
    gs.push_back(LayeredCitationDag(4, 10, 2, 1, &rng));
    gs.push_back(CommunityGraph(80, 320, 4, 0.9, 1, &rng));
    return gs;
  }();
  for (const Graph& g : graphs) {
    const auto index = Build(GetParam(), g, &rng);
    for (int q = 0; q < 60; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
      const NodeId t = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
      ASSERT_EQ(index->Reaches(s, t), Reaches(g, s, t))
          << index->name() << " s=" << s << " t=" << t;
    }
  }
}

TEST_P(ReachIndexTest, ReportsNameAndSize) {
  Rng rng(17);
  const Graph g = ErdosRenyi(50, 150, 1, &rng);
  const auto index = Build(GetParam(), g, &rng);
  EXPECT_FALSE(index->name().empty());
  EXPECT_GT(index->ByteSize(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, ReachIndexTest,
                         ::testing::Values(Kind::kBfs, Kind::kMatrix,
                                           Kind::kInterval, Kind::kTwoHop),
                         [](const ::testing::TestParamInfo<Kind>& param_info) {
                           switch (param_info.param) {
                             case Kind::kBfs:
                               return "bfs";
                             case Kind::kMatrix:
                               return "matrix";
                             case Kind::kInterval:
                               return "interval";
                             case Kind::kTwoHop:
                               return "twohop";
                           }
                           return "unknown";
                         });

TEST(ReachIndexTest, TwoHopLabelsStaySmallOnDags) {
  // On a chain, pruned landmark labeling should produce O(1) avg labels —
  // a sanity bound that the pruning actually prunes.
  Rng rng(19);
  const Graph g = Chain(2000, 1, &rng);
  const auto index = BuildTwoHopIndex(g);
  EXPECT_LT(index->ByteSize(), 2000 * 40 * sizeof(uint32_t))
      << "labels exploded; pruning broken?";
  EXPECT_TRUE(index->Reaches(0, 1999));
  EXPECT_FALSE(index->Reaches(1999, 0));
}

TEST(ReachIndexTest, MatrixIsExactOnDenseGraph) {
  Rng rng(23);
  const Graph g = ErdosRenyi(120, 1200, 1, &rng);
  const auto matrix = BuildReachMatrix(g);
  const auto bfs = BuildBfsIndex(g);
  for (int q = 0; q < 300; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(120));
    const NodeId t = static_cast<NodeId>(rng.Uniform(120));
    ASSERT_EQ(matrix->Reaches(s, t), bfs->Reaches(s, t));
  }
}

}  // namespace
}  // namespace pereach
