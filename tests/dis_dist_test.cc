#include "src/core/dis_dist.h"

#include <gtest/gtest.h>

#include "src/baselines/centralized.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;

TEST(DisDistTest, PaperExample5) {
  // q_br(Ann, Mark, 6) is true: the recommendation chain has length 6.
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisDist(&cluster, {ex.ann, ex.mark, 6});
  EXPECT_TRUE(a.reachable);
  EXPECT_EQ(a.distance, 6u);
  for (size_t v : a.metrics.site_visits) EXPECT_EQ(v, 1u);
}

TEST(DisDistTest, BoundFiveIsTooTight) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisDist(&cluster, {ex.ann, ex.mark, 5});
  EXPECT_FALSE(a.reachable);
}

TEST(DisDistTest, UnreachableIsInfinite) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisDist(&cluster, {ex.mark, ex.ann, 100});
  EXPECT_FALSE(a.reachable);
  EXPECT_EQ(a.distance, kInfWeight);
}

TEST(DisDistTest, SourceEqualsTarget) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  const QueryAnswer a = DisDist(&cluster, {ex.emmy, ex.emmy, 0});
  EXPECT_TRUE(a.reachable);
  EXPECT_EQ(a.distance, 0u);
}

TEST(DisDistTest, ZeroBoundOnlyMatchesSelf) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  Cluster cluster(&frag, NetworkModel());
  EXPECT_FALSE(DisDist(&cluster, {ex.ann, ex.walt, 0}).reachable);
  EXPECT_TRUE(DisDist(&cluster, {ex.ann, ex.walt, 1}).reachable);
}

TEST(DisDistTest, ShortestRouteCrossingFragmentsRepeatedly) {
  // Shortest path re-enters fragments: 0 -> 4 -> 1 -> 5 -> 2 (sites 0/1).
  const Graph g = testing_util::MakeGraph(
      6, {{0, 4}, {4, 1}, {1, 5}, {5, 2}, {0, 3}, {3, 2}});
  const std::vector<SiteId> part = {0, 0, 0, 0, 1, 1};
  const Fragmentation frag = Fragmentation::Build(g, part, 2);
  Cluster cluster(&frag, NetworkModel());
  // Two routes 0->2: via fragment-1 detour (length 4) and local (length 2).
  const QueryAnswer a = DisDist(&cluster, {0, 2, 10});
  EXPECT_TRUE(a.reachable);
  EXPECT_EQ(a.distance, 2u);
  // Remove the local shortcut by querying 0 -> 1: forced through site 1.
  const QueryAnswer b = DisDist(&cluster, {0, 1, 10});
  EXPECT_EQ(b.distance, 2u);
}

// Property sweep: exact distances match centralized BFS whenever they are
// within the bound; answers are false (and never report a distance <= l)
// otherwise.
struct DistCase {
  std::string name;
  size_t n;
  size_t m_factor;
  size_t k;
  uint32_t bound;
};

class DisDistPropertyTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DisDistPropertyTest, MatchesCentralizedBfsDistance) {
  const DistCase& c = GetParam();
  Rng rng(2000 + c.n * 7 + c.k);
  for (int graph_trial = 0; graph_trial < 4; ++graph_trial) {
    const Graph g = ErdosRenyi(c.n, c.m_factor * c.n, 3, &rng);
    const std::vector<SiteId> part = RandomPartition(c.n, c.k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, c.k);
    Cluster cluster(&frag, NetworkModel());
    for (int q = 0; q < 15; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(c.n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(c.n));
      const uint32_t exact = CentralizedDistance(g, s, t);
      const QueryAnswer a = DisDist(&cluster, {s, t, c.bound});
      if (exact != kInfDistance && exact <= c.bound) {
        ASSERT_TRUE(a.reachable) << "s=" << s << " t=" << t;
        ASSERT_EQ(a.distance, exact) << "s=" << s << " t=" << t;
      } else {
        ASSERT_FALSE(a.reachable)
            << "s=" << s << " t=" << t << " exact=" << exact;
      }
      if (s != t) {
        for (size_t v : a.metrics.site_visits) ASSERT_EQ(v, 1u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DisDistPropertyTest,
    ::testing::Values(DistCase{"tiny", 8, 2, 2, 3},
                      DistCase{"small", 40, 2, 3, 5},
                      DistCase{"medium", 80, 2, 5, 10},
                      DistCase{"tightbound", 60, 3, 4, 2},
                      DistCase{"loosebound", 60, 1, 4, 50},
                      DistCase{"manyfrag", 50, 2, 10, 8}),
    [](const ::testing::TestParamInfo<DistCase>& param_info) {
      return param_info.param.name;
    });

TEST(DisDistPropertyTest, GridExactDistances) {
  // Grid distances are Manhattan: a sharp correctness check.
  Rng rng(3);
  const Graph g = GridGraph(5, 7, 1, &rng);
  const std::vector<SiteId> part = RandomPartition(g.NumNodes(), 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  Cluster cluster(&frag, NetworkModel());
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 7; ++c) {
      const NodeId t = static_cast<NodeId>(r * 7 + c);
      const QueryAnswer a = DisDist(&cluster, {0, t, 20});
      ASSERT_TRUE(a.reachable);
      ASSERT_EQ(a.distance, r + c) << "cell " << r << "," << c;
    }
  }
}

}  // namespace
}  // namespace pereach
