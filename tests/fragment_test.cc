#include "src/fragment/fragmentation.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::MakeGraph;
using testing_util::MakePaperExample;
using testing_util::PaperExample;
using testing_util::RandomPartition;

// Checks every structural invariant of §2.1 against the source graph.
void CheckFragmentationInvariants(const Graph& g, const Fragmentation& frag,
                                  const std::vector<SiteId>& part) {
  // (a) (V_1, ..., V_k) partitions V.
  size_t total_local = 0;
  for (SiteId i = 0; i < frag.num_fragments(); ++i) {
    const Fragment& f = frag.fragment(i);
    total_local += f.num_local();
    for (NodeId l = 0; l < f.num_local(); ++l) {
      EXPECT_EQ(part[f.ToGlobal(l)], i);
      EXPECT_EQ(f.ToLocal(f.ToGlobal(l)), l);
      EXPECT_FALSE(f.IsVirtual(l));
      // Labels preserved.
      EXPECT_EQ(f.local_graph().label(l), g.label(f.ToGlobal(l)));
    }
  }
  EXPECT_EQ(total_local, g.NumNodes());

  // (b+d) every edge of G appears exactly once over all fragments, local or
  // cross; cross edges end in virtual nodes with correct owner/label.
  std::multiset<std::pair<NodeId, NodeId>> expected_edges;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) expected_edges.emplace(u, v);
  }
  std::multiset<std::pair<NodeId, NodeId>> got_edges;
  size_t total_cross = 0;
  for (SiteId i = 0; i < frag.num_fragments(); ++i) {
    const Fragment& f = frag.fragment(i);
    size_t cross_here = 0;
    for (NodeId lu = 0; lu < f.num_local(); ++lu) {
      for (NodeId lv : f.local_graph().OutNeighbors(lu)) {
        got_edges.emplace(f.ToGlobal(lu), f.ToGlobal(lv));
        if (f.IsVirtual(lv)) {
          ++cross_here;
          EXPECT_NE(part[f.ToGlobal(lv)], i) << "virtual node stored locally";
          EXPECT_EQ(f.VirtualOwner(lv), part[f.ToGlobal(lv)]);
          EXPECT_EQ(f.local_graph().label(lv), g.label(f.ToGlobal(lv)));
        } else {
          EXPECT_EQ(part[f.ToGlobal(lv)], i);
        }
      }
    }
    // Virtual nodes are sinks.
    for (NodeId lv = static_cast<NodeId>(f.num_local());
         lv < f.local_graph().NumNodes(); ++lv) {
      EXPECT_EQ(f.local_graph().OutDegree(lv), 0u);
    }
    EXPECT_EQ(f.num_cross_edges(), cross_here);
    total_cross += cross_here;
  }
  EXPECT_EQ(got_edges, expected_edges);
  EXPECT_EQ(frag.num_cross_edges(), total_cross);
  EXPECT_EQ(frag.cross_edges().size(), total_cross);

  // (F_i.I) in-nodes are exactly the targets of cross edges, per fragment.
  std::map<SiteId, std::set<NodeId>> expected_in;  // site -> global ids
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (part[u] != part[v]) expected_in[part[v]].insert(v);
    }
  }
  size_t total_in = 0;
  for (SiteId i = 0; i < frag.num_fragments(); ++i) {
    const Fragment& f = frag.fragment(i);
    std::set<NodeId> got_in;
    for (NodeId l : f.in_nodes()) {
      EXPECT_FALSE(f.IsVirtual(l));
      got_in.insert(f.ToGlobal(l));
    }
    EXPECT_EQ(got_in, expected_in[i]) << "fragment " << i;
    total_in += got_in.size();
  }
  EXPECT_EQ(frag.num_boundary_nodes(), total_in);

  // |F_m| is the max fragment size.
  size_t max_size = 0;
  for (SiteId i = 0; i < frag.num_fragments(); ++i) {
    max_size = std::max(max_size, frag.fragment(i).Size());
  }
  EXPECT_EQ(frag.largest_fragment_size(), max_size);
}

TEST(FragmentationTest, PaperExampleStructure) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  CheckFragmentationInvariants(ex.graph, frag, ex.partition);

  // Example 2: F1.O = {Pat, Mat, Emmy}, F1.I = {Fred}, |cE_1| = 3.
  const Fragment& f1 = frag.fragment(0);
  EXPECT_EQ(f1.num_virtual(), 3u);
  std::set<NodeId> f1_virtual;
  for (NodeId v = static_cast<NodeId>(f1.num_local());
       v < f1.local_graph().NumNodes(); ++v) {
    f1_virtual.insert(f1.ToGlobal(v));
  }
  EXPECT_EQ(f1_virtual, (std::set<NodeId>{ex.pat, ex.mat, ex.emmy}));
  ASSERT_EQ(f1.in_nodes().size(), 1u);
  EXPECT_EQ(f1.ToGlobal(f1.in_nodes()[0]), ex.fred);
  EXPECT_EQ(f1.num_cross_edges(), 3u);

  // Fragment graph totals: 6 cross edges, in-nodes {Fred},{Mat,Emmy,Jack},
  // {Pat,Ross}.
  EXPECT_EQ(frag.num_cross_edges(), 6u);
  EXPECT_EQ(frag.num_boundary_nodes(), 6u);
}

TEST(FragmentationTest, SingleFragmentHasNoBoundary) {
  const PaperExample ex = MakePaperExample();
  const std::vector<SiteId> part(ex.graph.NumNodes(), 0);
  const Fragmentation frag = Fragmentation::Build(ex.graph, part, 1);
  EXPECT_EQ(frag.num_cross_edges(), 0u);
  EXPECT_EQ(frag.num_boundary_nodes(), 0u);
  EXPECT_EQ(frag.fragment(0).num_virtual(), 0u);
  CheckFragmentationInvariants(ex.graph, frag, part);
}

TEST(FragmentationTest, EmptyFragmentTolerated) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  const std::vector<SiteId> part = {0, 0, 2};  // site 1 empty
  const Fragmentation frag = Fragmentation::Build(g, part, 3);
  EXPECT_EQ(frag.fragment(1).num_local(), 0u);
  CheckFragmentationInvariants(g, frag, part);
}

// Property sweep: invariants hold for every (generator, partitioner, k).
struct FragmentationCase {
  std::string name;
  size_t n;
  size_t k;
};

class FragmentationPropertyTest
    : public ::testing::TestWithParam<FragmentationCase> {};

TEST_P(FragmentationPropertyTest, InvariantsHoldOnRandomGraphs) {
  const FragmentationCase& c = GetParam();
  Rng rng(c.n * 31 + c.k);
  const Graph g = ErdosRenyi(c.n, 3 * c.n, 4, &rng);

  const RandomPartitioner random_p;
  const ChunkPartitioner chunk_p;
  const BfsGrowPartitioner bfs_p;
  for (const Partitioner* p :
       std::initializer_list<const Partitioner*>{&random_p, &chunk_p, &bfs_p}) {
    const std::vector<SiteId> part = p->Partition(g, c.k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, c.k);
    CheckFragmentationInvariants(g, frag, part);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FragmentationPropertyTest,
    ::testing::Values(FragmentationCase{"tiny", 8, 2},
                      FragmentationCase{"small", 40, 3},
                      FragmentationCase{"medium", 150, 5},
                      FragmentationCase{"manyfrag", 60, 10},
                      FragmentationCase{"large", 400, 7}),
    [](const ::testing::TestParamInfo<FragmentationCase>& param_info) {
      return param_info.param.name;
    });

TEST(FragmentTest, SerializationRoundTrip) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  for (SiteId i = 0; i < 3; ++i) {
    const Fragment& f = frag.fragment(i);
    Encoder enc;
    f.Serialize(&enc);
    EXPECT_EQ(enc.size(), f.ByteSize());
    Decoder dec(enc.buffer());
    const Fragment g = Fragment::Deserialize(&dec);
    EXPECT_TRUE(dec.Done());
    EXPECT_EQ(g.site(), f.site());
    EXPECT_EQ(g.num_local(), f.num_local());
    EXPECT_EQ(g.num_virtual(), f.num_virtual());
    EXPECT_EQ(g.num_cross_edges(), f.num_cross_edges());
    EXPECT_EQ(g.in_nodes(), f.in_nodes());
    for (NodeId l = 0; l < f.local_graph().NumNodes(); ++l) {
      EXPECT_EQ(g.ToGlobal(l), f.ToGlobal(l));
      EXPECT_EQ(g.local_graph().label(l), f.local_graph().label(l));
    }
  }
}

TEST(FragmentTest, ToLocalOfForeignNodeIsInvalid) {
  const PaperExample ex = MakePaperExample();
  const Fragmentation frag = Fragmentation::Build(ex.graph, ex.partition, 3);
  // Tom (DC3) has no edges to/from DC1, so F1 knows nothing about him.
  EXPECT_EQ(frag.fragment(0).ToLocal(ex.tom), kInvalidNode);
  EXPECT_FALSE(frag.fragment(0).Contains(ex.tom));
  EXPECT_TRUE(frag.fragment(2).Contains(ex.tom));
}

// ---------------------------------------------------------------------------
// Partitioners
// ---------------------------------------------------------------------------

TEST(PartitionerTest, RandomCoversAllSites) {
  Rng rng(1);
  const Graph g = ErdosRenyi(100, 200, 1, &rng);
  const std::vector<SiteId> part = RandomPartitioner().Partition(g, 7, &rng);
  std::set<SiteId> sites(part.begin(), part.end());
  EXPECT_EQ(sites.size(), 7u);
  for (SiteId s : part) EXPECT_LT(s, 7u);
}

TEST(PartitionerTest, ChunkIsContiguousAndBalanced) {
  Rng rng(2);
  const Graph g = ErdosRenyi(100, 200, 1, &rng);
  const std::vector<SiteId> part = ChunkPartitioner().Partition(g, 4, &rng);
  for (size_t v = 1; v < part.size(); ++v) EXPECT_GE(part[v], part[v - 1]);
  std::map<SiteId, size_t> counts;
  for (SiteId s : part) ++counts[s];
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [site, count] : counts) EXPECT_NEAR(count, 25.0, 1.0);
}

TEST(PartitionerTest, BfsGrowAssignsEverythingAndIsBalancedish) {
  Rng rng(3);
  const Graph g = PreferentialAttachment(500, 3, 1, &rng);
  const std::vector<SiteId> part = BfsGrowPartitioner().Partition(g, 5, &rng);
  std::map<SiteId, size_t> counts;
  for (SiteId s : part) {
    ASSERT_LT(s, 5u);
    ++counts[s];
  }
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [site, count] : counts) {
    EXPECT_GT(count, 500u / 5 / 4) << "region " << site << " too small";
  }
}

TEST(PartitionerTest, BfsGrowCutsFewerEdgesThanRandom) {
  Rng rng(4);
  // A grid has strong locality, so BFS growth should beat random clearly.
  const Graph g = GridGraph(40, 40, 1, &rng);
  const std::vector<SiteId> rand_part =
      RandomPartitioner().Partition(g, 4, &rng);
  const std::vector<SiteId> bfs_part =
      BfsGrowPartitioner().Partition(g, 4, &rng);
  const size_t rand_cut =
      Fragmentation::Build(g, rand_part, 4).num_cross_edges();
  const size_t bfs_cut = Fragmentation::Build(g, bfs_part, 4).num_cross_edges();
  EXPECT_LT(bfs_cut, rand_cut / 2);
}

TEST(PartitionerTest, EnsureNonEmptySitesFillsHoles) {
  Rng rng(5);
  std::vector<SiteId> part(20, 0);  // everything on site 0
  EnsureNonEmptySites(&part, 4, &rng);
  std::set<SiteId> sites(part.begin(), part.end());
  EXPECT_EQ(sites.size(), 4u);
}

}  // namespace
}  // namespace pereach
