// Differential suite for the coordinator's boundary-graph reach index: the
// kBoundaryIndex answer path must agree bit-for-bit with the paper's BES
// assembling path (and with a centralized oracle) across partitioners,
// equation forms, and interleaved AddEdges epochs — the boundary index is a
// short-circuit, never a semantics change.

#include "src/index/boundary_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/baselines/centralized.h"
#include "src/core/incremental.h"
#include "src/engine/partial_eval_engine.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "src/net/cluster.h"
#include "src/regex/regex.h"
#include "tests/test_util.h"

namespace pereach {
namespace {

using testing_util::AllPartitioners;
using testing_util::DiffContext;
using testing_util::EdgeWorld;
using testing_util::kAllEquationForms;
using testing_util::RandomPartition;

// ---------------------------------------------------------------------------
// BoundaryRows wire format

TEST(BoundaryRowsTest, SerializeRoundTrips) {
  BoundaryRows rows;
  rows.oset_globals = {3, 9, 40, 77};
  rows.rep_globals = {12, 25};
  rows.rows = {{0, 2, 3}, {}};
  rows.aliases = {{14, 12}, {30, 25}};

  Encoder enc;
  rows.Serialize(&enc);
  Decoder dec(enc.buffer());
  const BoundaryRows back = BoundaryRows::Deserialize(&dec);
  EXPECT_TRUE(dec.Done());
  EXPECT_EQ(back.oset_globals, rows.oset_globals);
  EXPECT_EQ(back.rep_globals, rows.rep_globals);
  EXPECT_EQ(back.rows, rows.rows);
  EXPECT_EQ(back.aliases, rows.aliases);
}

// ---------------------------------------------------------------------------
// Direct index semantics on a hand-built boundary graph

// Two fragments: F0's in-node 10 reaches virtual 20 and 30; F1's in-nodes
// {20, 30} (30 aliased to 20, same local SCC) reach virtual 10 — one big
// boundary cycle — plus F1's in-node 40 reaching nothing.
TEST(BoundaryReachIndexTest, HandBuiltGraphAnswersAndInvalidates) {
  BoundaryReachIndex index(2);
  EXPECT_EQ(index.DirtySites().size(), 2u);

  BoundaryRows f0;
  f0.oset_globals = {20, 30};
  f0.rep_globals = {10};
  f0.rows = {{0, 1}};
  index.SetFragmentRows(0, std::move(f0));

  BoundaryRows f1;
  f1.oset_globals = {10};
  f1.rep_globals = {20, 40};
  f1.rows = {{0}, {}};
  f1.aliases = {{30, 20}};
  index.SetFragmentRows(1, std::move(f1));

  EXPECT_TRUE(index.DirtySites().empty());
  index.Ensure();
  EXPECT_EQ(index.rebuild_count(), 1u);
  EXPECT_EQ(index.num_boundary_nodes(), 4u);  // 10, 20, 30, 40

  EXPECT_TRUE(index.Reaches(10, 10));  // reflexive
  EXPECT_TRUE(index.Reaches(10, 20));
  EXPECT_TRUE(index.Reaches(10, 30));
  EXPECT_TRUE(index.Reaches(20, 10));
  EXPECT_TRUE(index.Reaches(30, 10));  // via its alias edge to 20
  EXPECT_FALSE(index.Reaches(40, 10));
  EXPECT_FALSE(index.Reaches(10, 40));
  const NodeId sources[] = {40, 30};
  const NodeId targets[] = {20};
  EXPECT_TRUE(index.ReachesAny(sources, targets));

  // Invalidation marks exactly the touched fragment dirty; a clean Ensure
  // is a no-op, a post-refresh Ensure rebuilds once.
  index.Ensure();
  EXPECT_EQ(index.rebuild_count(), 1u);
  index.InvalidateFragment(1);
  EXPECT_EQ(index.DirtySites(), std::vector<SiteId>{1});
  BoundaryRows f1b;
  f1b.oset_globals = {10};
  f1b.rep_globals = {20, 40};
  f1b.rows = {{0}, {0}};  // 40 now reaches virtual 10 too
  f1b.aliases = {{30, 20}};
  index.SetFragmentRows(1, std::move(f1b));
  index.Ensure();
  EXPECT_EQ(index.rebuild_count(), 2u);
  EXPECT_TRUE(index.Reaches(40, 30));  // 40 -> 10 -> {20, 30}
}

// ---------------------------------------------------------------------------
// Randomized differential: indexed answers == BES answers == oracle

TEST(BoundaryIndexDifferentialTest,
     MatchesBesAcrossPartitionersFormsAndEpochs) {
  constexpr size_t kSites = 4, kEpochs = 3, kQueriesPerEpoch = 40;
  constexpr uint64_t kSeed = 4242;
  Rng rng(kSeed);
  for (const auto& partitioner : AllPartitioners()) {
    for (const EquationForm form : kAllEquationForms) {
      const size_t n = 60 + rng.Uniform(30);
      const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
      const std::vector<SiteId> part = partitioner->Partition(g, kSites, &rng);
      IncrementalReachIndex index(g, part, kSites);
      EdgeWorld world = EdgeWorld::FromGraph(g);

      Cluster cluster(&index.fragmentation(), NetworkModel{});
      PartialEvalOptions bes_options;
      bes_options.form = form;
      PartialEvalEngine bes_engine(&cluster, bes_options);
      PartialEvalOptions idx_options;
      idx_options.form = form;
      idx_options.reach_path = ReachAnswerPath::kBoundaryIndex;
      PartialEvalEngine idx_engine(&cluster, idx_options);
      index.SetUpdateListener([&](SiteId site) {
        bes_engine.InvalidateFragment(site);
        idx_engine.InvalidateFragment(site);
      });

      for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
        const Graph oracle = world.Build();
        std::vector<Query> batch;
        for (size_t q = 0; q < kQueriesPerEpoch; ++q) {
          batch.push_back(
              Query::Reach(static_cast<NodeId>(rng.Uniform(n)),
                           static_cast<NodeId>(rng.Uniform(n))));
        }
        const BatchAnswer bes = bes_engine.EvaluateBatch(batch);
        const BatchAnswer indexed = idx_engine.EvaluateBatch(batch);
        for (size_t q = 0; q < batch.size(); ++q) {
          const bool expected =
              CentralizedReach(oracle, batch[q].source, batch[q].target);
          ASSERT_EQ(bes.answers[q].reachable, expected)
              << DiffContext(kSeed, partitioner->name(), form, epoch,
                             batch[q]);
          ASSERT_EQ(indexed.answers[q].reachable, expected)
              << "boundary index diverged: "
              << DiffContext(kSeed, partitioner->name(), form, epoch,
                             batch[q]);
        }

        // Interleave an update epoch: a couple of random edges through the
        // incremental index, invalidating both engines via the listener.
        index.AddEdges(world.AddRandomEdges(3, &rng));
      }
      index.SetUpdateListener(nullptr);

      // The index path actually ran through the label structure, and
      // rebuilt at most once per dirty epoch.
      const BoundaryReachIndex* boundary = idx_engine.boundary_index();
      ASSERT_NE(boundary, nullptr);
      EXPECT_GT(boundary->label_hits() + boundary->dfs_fallbacks(), 0u);
      EXPECT_LE(boundary->rebuild_count(), kEpochs);
    }
  }
}

// Lazy dirty-portion rebuilds: a second batch in the same epoch must not
// rebuild, an update must dirty only the touched fragments, and the next
// batch refreshes exactly those.
TEST(BoundaryIndexDifferentialTest, RebuildsLazilyAndOnlyWhenDirty) {
  Rng rng(99);
  const size_t n = 80, kSites = 4;
  const Graph g = ErdosRenyi(n, 3 * n, 2, &rng);
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  IncrementalReachIndex index(g, part, kSites);

  Cluster cluster(&index.fragmentation(), NetworkModel{});
  PartialEvalOptions options;
  options.reach_path = ReachAnswerPath::kBoundaryIndex;
  PartialEvalEngine engine(&cluster, options);
  index.SetUpdateListener(
      [&](SiteId site) { engine.InvalidateFragment(site); });

  std::vector<Query> batch;
  for (size_t q = 0; q < 16; ++q) {
    batch.push_back(Query::Reach(static_cast<NodeId>(rng.Uniform(n)),
                                 static_cast<NodeId>(rng.Uniform(n))));
  }
  engine.EvaluateBatch(batch);
  const BoundaryReachIndex* boundary = engine.boundary_index();
  ASSERT_NE(boundary, nullptr);
  EXPECT_EQ(boundary->rebuild_count(), 1u);
  engine.EvaluateBatch(batch);
  EXPECT_EQ(boundary->rebuild_count(), 1u);  // warm: no refresh round

  // An intra-fragment edge dirties exactly one fragment.
  NodeId u = 0, v = 0;
  for (NodeId a = 0; a < n && u == v; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (part[a] == part[b]) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_NE(u, v);
  index.AddEdge(u, v);
  EXPECT_EQ(boundary->DirtySites(), std::vector<SiteId>{part[u]});
  engine.EvaluateBatch(batch);
  EXPECT_EQ(boundary->rebuild_count(), 2u);
  EXPECT_TRUE(boundary->DirtySites().empty());
}

// Mixed-class batches: reach queries take the boundary path while dist/rpq
// ride the equation broadcast of the same EvaluateBatch — answers must agree
// with the all-BES engine for every class.
TEST(BoundaryIndexDifferentialTest, MixedClassBatchesAgreeWithBes) {
  Rng rng(31337);
  const size_t n = 70, kSites = 4, kLabels = 3;
  const Graph g = ErdosRenyi(n, 3 * n, kLabels, &rng);
  const std::vector<SiteId> part = RandomPartition(n, kSites, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, kSites);
  Cluster cluster(&frag, NetworkModel{});
  PartialEvalEngine bes_engine(&cluster);
  PartialEvalOptions idx_options;
  idx_options.reach_path = ReachAnswerPath::kBoundaryIndex;
  PartialEvalEngine idx_engine(&cluster, idx_options);

  std::vector<Query> batch;
  for (size_t q = 0; q < 30; ++q) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(n));
    const NodeId t = static_cast<NodeId>(rng.Uniform(n));
    switch (rng.Uniform(3)) {
      case 0:
        batch.push_back(Query::Reach(s, t));
        break;
      case 1:
        batch.push_back(
            Query::Dist(s, t, static_cast<uint32_t>(1 + rng.Uniform(6))));
        break;
      default:
        batch.push_back(Query::Rpq(
            s, t,
            QueryAutomaton::FromRegex(Regex::Random(3, kLabels, &rng))
                .value()));
    }
  }
  const BatchAnswer expected = bes_engine.EvaluateBatch(batch);
  const BatchAnswer actual = idx_engine.EvaluateBatch(batch);
  for (size_t q = 0; q < batch.size(); ++q) {
    EXPECT_EQ(actual.answers[q].reachable, expected.answers[q].reachable)
        << "kind=" << static_cast<int>(batch[q].kind)
        << " s=" << batch[q].source << " t=" << batch[q].target;
    if (batch[q].kind == QueryKind::kDist) {
      EXPECT_EQ(actual.answers[q].distance, expected.answers[q].distance);
    }
  }
}

// Degenerate fragmentations: a single site (no boundary at all) and as many
// sites as nodes (everything is boundary).
TEST(BoundaryIndexDifferentialTest, DegenerateFragmentCounts) {
  Rng rng(17);
  const size_t n = 30;
  const Graph g = ErdosRenyi(n, 2 * n, 2, &rng);
  for (const size_t k : {size_t{1}, n}) {
    const std::vector<SiteId> part =
        k == 1 ? std::vector<SiteId>(n, 0) : [&] {
          std::vector<SiteId> p(n);
          for (NodeId v = 0; v < n; ++v) p[v] = static_cast<SiteId>(v);
          return p;
        }();
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, NetworkModel{});
    PartialEvalOptions options;
    options.reach_path = ReachAnswerPath::kBoundaryIndex;
    PartialEvalEngine engine(&cluster, options);
    for (int q = 0; q < 60; ++q) {
      const NodeId s = static_cast<NodeId>(rng.Uniform(n));
      const NodeId t = static_cast<NodeId>(rng.Uniform(n));
      EXPECT_EQ(engine.Evaluate(Query::Reach(s, t)).reachable,
                CentralizedReach(g, s, t))
          << "k=" << k << " s=" << s << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace pereach
