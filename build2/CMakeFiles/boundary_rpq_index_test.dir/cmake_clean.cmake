file(REMOVE_RECURSE
  "CMakeFiles/boundary_rpq_index_test.dir/tests/boundary_rpq_index_test.cc.o"
  "CMakeFiles/boundary_rpq_index_test.dir/tests/boundary_rpq_index_test.cc.o.d"
  "boundary_rpq_index_test"
  "boundary_rpq_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_rpq_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
