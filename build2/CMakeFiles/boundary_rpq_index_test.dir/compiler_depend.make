# Empty compiler generated dependencies file for boundary_rpq_index_test.
# This may be replaced when dependencies are built.
