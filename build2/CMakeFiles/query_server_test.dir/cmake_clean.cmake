file(REMOVE_RECURSE
  "CMakeFiles/query_server_test.dir/tests/query_server_test.cc.o"
  "CMakeFiles/query_server_test.dir/tests/query_server_test.cc.o.d"
  "query_server_test"
  "query_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
