# Empty dependencies file for query_server_test.
# This may be replaced when dependencies are built.
