# Empty dependencies file for citation_analysis.
# This may be replaced when dependencies are built.
