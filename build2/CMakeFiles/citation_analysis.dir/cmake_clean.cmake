file(REMOVE_RECURSE
  "CMakeFiles/citation_analysis.dir/examples/citation_analysis.cpp.o"
  "CMakeFiles/citation_analysis.dir/examples/citation_analysis.cpp.o.d"
  "citation_analysis"
  "citation_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
