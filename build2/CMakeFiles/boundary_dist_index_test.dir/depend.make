# Empty dependencies file for boundary_dist_index_test.
# This may be replaced when dependencies are built.
