file(REMOVE_RECURSE
  "CMakeFiles/boundary_dist_index_test.dir/tests/boundary_dist_index_test.cc.o"
  "CMakeFiles/boundary_dist_index_test.dir/tests/boundary_dist_index_test.cc.o.d"
  "boundary_dist_index_test"
  "boundary_dist_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_dist_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
