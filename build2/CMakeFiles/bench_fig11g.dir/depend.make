# Empty dependencies file for bench_fig11g.
# This may be replaced when dependencies are built.
