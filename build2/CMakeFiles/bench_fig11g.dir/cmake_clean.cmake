file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11g.dir/bench/bench_fig11g.cc.o"
  "CMakeFiles/bench_fig11g.dir/bench/bench_fig11g.cc.o.d"
  "bench_fig11g"
  "bench_fig11g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
