# Empty dependencies file for equation_form_test.
# This may be replaced when dependencies are built.
