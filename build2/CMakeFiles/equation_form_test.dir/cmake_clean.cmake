file(REMOVE_RECURSE
  "CMakeFiles/equation_form_test.dir/tests/equation_form_test.cc.o"
  "CMakeFiles/equation_form_test.dir/tests/equation_form_test.cc.o.d"
  "equation_form_test"
  "equation_form_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equation_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
