# Empty dependencies file for pereach.
# This may be replaced when dependencies are built.
