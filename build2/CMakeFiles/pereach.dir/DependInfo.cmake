
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/centralized.cc" "CMakeFiles/pereach.dir/src/baselines/centralized.cc.o" "gcc" "CMakeFiles/pereach.dir/src/baselines/centralized.cc.o.d"
  "/root/repo/src/baselines/dis_mp.cc" "CMakeFiles/pereach.dir/src/baselines/dis_mp.cc.o" "gcc" "CMakeFiles/pereach.dir/src/baselines/dis_mp.cc.o.d"
  "/root/repo/src/baselines/dis_naive.cc" "CMakeFiles/pereach.dir/src/baselines/dis_naive.cc.o" "gcc" "CMakeFiles/pereach.dir/src/baselines/dis_naive.cc.o.d"
  "/root/repo/src/baselines/dis_rpq_suciu.cc" "CMakeFiles/pereach.dir/src/baselines/dis_rpq_suciu.cc.o" "gcc" "CMakeFiles/pereach.dir/src/baselines/dis_rpq_suciu.cc.o.d"
  "/root/repo/src/bes/bes.cc" "CMakeFiles/pereach.dir/src/bes/bes.cc.o" "gcc" "CMakeFiles/pereach.dir/src/bes/bes.cc.o.d"
  "/root/repo/src/bes/distance_system.cc" "CMakeFiles/pereach.dir/src/bes/distance_system.cc.o" "gcc" "CMakeFiles/pereach.dir/src/bes/distance_system.cc.o.d"
  "/root/repo/src/core/dis_dist.cc" "CMakeFiles/pereach.dir/src/core/dis_dist.cc.o" "gcc" "CMakeFiles/pereach.dir/src/core/dis_dist.cc.o.d"
  "/root/repo/src/core/dis_reach.cc" "CMakeFiles/pereach.dir/src/core/dis_reach.cc.o" "gcc" "CMakeFiles/pereach.dir/src/core/dis_reach.cc.o.d"
  "/root/repo/src/core/dis_rpq.cc" "CMakeFiles/pereach.dir/src/core/dis_rpq.cc.o" "gcc" "CMakeFiles/pereach.dir/src/core/dis_rpq.cc.o.d"
  "/root/repo/src/core/dist_graph.cc" "CMakeFiles/pereach.dir/src/core/dist_graph.cc.o" "gcc" "CMakeFiles/pereach.dir/src/core/dist_graph.cc.o.d"
  "/root/repo/src/core/incremental.cc" "CMakeFiles/pereach.dir/src/core/incremental.cc.o" "gcc" "CMakeFiles/pereach.dir/src/core/incremental.cc.o.d"
  "/root/repo/src/core/local_eval.cc" "CMakeFiles/pereach.dir/src/core/local_eval.cc.o" "gcc" "CMakeFiles/pereach.dir/src/core/local_eval.cc.o.d"
  "/root/repo/src/engine/baseline_engines.cc" "CMakeFiles/pereach.dir/src/engine/baseline_engines.cc.o" "gcc" "CMakeFiles/pereach.dir/src/engine/baseline_engines.cc.o.d"
  "/root/repo/src/engine/fragment_context.cc" "CMakeFiles/pereach.dir/src/engine/fragment_context.cc.o" "gcc" "CMakeFiles/pereach.dir/src/engine/fragment_context.cc.o.d"
  "/root/repo/src/engine/partial_eval_engine.cc" "CMakeFiles/pereach.dir/src/engine/partial_eval_engine.cc.o" "gcc" "CMakeFiles/pereach.dir/src/engine/partial_eval_engine.cc.o.d"
  "/root/repo/src/engine/query_engine.cc" "CMakeFiles/pereach.dir/src/engine/query_engine.cc.o" "gcc" "CMakeFiles/pereach.dir/src/engine/query_engine.cc.o.d"
  "/root/repo/src/fragment/fragment.cc" "CMakeFiles/pereach.dir/src/fragment/fragment.cc.o" "gcc" "CMakeFiles/pereach.dir/src/fragment/fragment.cc.o.d"
  "/root/repo/src/fragment/fragmentation.cc" "CMakeFiles/pereach.dir/src/fragment/fragmentation.cc.o" "gcc" "CMakeFiles/pereach.dir/src/fragment/fragmentation.cc.o.d"
  "/root/repo/src/fragment/partitioner.cc" "CMakeFiles/pereach.dir/src/fragment/partitioner.cc.o" "gcc" "CMakeFiles/pereach.dir/src/fragment/partitioner.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "CMakeFiles/pereach.dir/src/graph/algorithms.cc.o" "gcc" "CMakeFiles/pereach.dir/src/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/pereach.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/pereach.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/pereach.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/pereach.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "CMakeFiles/pereach.dir/src/graph/graph_io.cc.o" "gcc" "CMakeFiles/pereach.dir/src/graph/graph_io.cc.o.d"
  "/root/repo/src/index/boundary_dist_index.cc" "CMakeFiles/pereach.dir/src/index/boundary_dist_index.cc.o" "gcc" "CMakeFiles/pereach.dir/src/index/boundary_dist_index.cc.o.d"
  "/root/repo/src/index/boundary_index.cc" "CMakeFiles/pereach.dir/src/index/boundary_index.cc.o" "gcc" "CMakeFiles/pereach.dir/src/index/boundary_index.cc.o.d"
  "/root/repo/src/index/boundary_rpq_index.cc" "CMakeFiles/pereach.dir/src/index/boundary_rpq_index.cc.o" "gcc" "CMakeFiles/pereach.dir/src/index/boundary_rpq_index.cc.o.d"
  "/root/repo/src/index/reach_index.cc" "CMakeFiles/pereach.dir/src/index/reach_index.cc.o" "gcc" "CMakeFiles/pereach.dir/src/index/reach_index.cc.o.d"
  "/root/repo/src/index/reach_labels.cc" "CMakeFiles/pereach.dir/src/index/reach_labels.cc.o" "gcc" "CMakeFiles/pereach.dir/src/index/reach_labels.cc.o.d"
  "/root/repo/src/mapreduce/mapreduce.cc" "CMakeFiles/pereach.dir/src/mapreduce/mapreduce.cc.o" "gcc" "CMakeFiles/pereach.dir/src/mapreduce/mapreduce.cc.o.d"
  "/root/repo/src/mapreduce/mr_rpq.cc" "CMakeFiles/pereach.dir/src/mapreduce/mr_rpq.cc.o" "gcc" "CMakeFiles/pereach.dir/src/mapreduce/mr_rpq.cc.o.d"
  "/root/repo/src/net/cluster.cc" "CMakeFiles/pereach.dir/src/net/cluster.cc.o" "gcc" "CMakeFiles/pereach.dir/src/net/cluster.cc.o.d"
  "/root/repo/src/net/metrics.cc" "CMakeFiles/pereach.dir/src/net/metrics.cc.o" "gcc" "CMakeFiles/pereach.dir/src/net/metrics.cc.o.d"
  "/root/repo/src/regex/canonical.cc" "CMakeFiles/pereach.dir/src/regex/canonical.cc.o" "gcc" "CMakeFiles/pereach.dir/src/regex/canonical.cc.o.d"
  "/root/repo/src/regex/query_automaton.cc" "CMakeFiles/pereach.dir/src/regex/query_automaton.cc.o" "gcc" "CMakeFiles/pereach.dir/src/regex/query_automaton.cc.o.d"
  "/root/repo/src/regex/regex.cc" "CMakeFiles/pereach.dir/src/regex/regex.cc.o" "gcc" "CMakeFiles/pereach.dir/src/regex/regex.cc.o.d"
  "/root/repo/src/server/batch_queue.cc" "CMakeFiles/pereach.dir/src/server/batch_queue.cc.o" "gcc" "CMakeFiles/pereach.dir/src/server/batch_queue.cc.o.d"
  "/root/repo/src/server/query_server.cc" "CMakeFiles/pereach.dir/src/server/query_server.cc.o" "gcc" "CMakeFiles/pereach.dir/src/server/query_server.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/pereach.dir/src/util/status.cc.o" "gcc" "CMakeFiles/pereach.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/pereach.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/pereach.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
