file(REMOVE_RECURSE
  "libpereach.a"
)
