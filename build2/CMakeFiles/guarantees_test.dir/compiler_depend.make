# Empty compiler generated dependencies file for guarantees_test.
# This may be replaced when dependencies are built.
