file(REMOVE_RECURSE
  "CMakeFiles/guarantees_test.dir/tests/guarantees_test.cc.o"
  "CMakeFiles/guarantees_test.dir/tests/guarantees_test.cc.o.d"
  "guarantees_test"
  "guarantees_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarantees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
