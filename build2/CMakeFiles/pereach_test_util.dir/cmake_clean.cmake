file(REMOVE_RECURSE
  "CMakeFiles/pereach_test_util.dir/tests/test_util.cc.o"
  "CMakeFiles/pereach_test_util.dir/tests/test_util.cc.o.d"
  "libpereach_test_util.a"
  "libpereach_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pereach_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
