# Empty dependencies file for pereach_test_util.
# This may be replaced when dependencies are built.
