file(REMOVE_RECURSE
  "libpereach_test_util.a"
)
