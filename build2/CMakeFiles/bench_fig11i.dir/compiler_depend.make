# Empty compiler generated dependencies file for bench_fig11i.
# This may be replaced when dependencies are built.
