file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11i.dir/bench/bench_fig11i.cc.o"
  "CMakeFiles/bench_fig11i.dir/bench/bench_fig11i.cc.o.d"
  "bench_fig11i"
  "bench_fig11i.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
