# Empty dependencies file for bes_test.
# This may be replaced when dependencies are built.
