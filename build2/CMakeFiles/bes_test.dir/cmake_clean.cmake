file(REMOVE_RECURSE
  "CMakeFiles/bes_test.dir/tests/bes_test.cc.o"
  "CMakeFiles/bes_test.dir/tests/bes_test.cc.o.d"
  "bes_test"
  "bes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
