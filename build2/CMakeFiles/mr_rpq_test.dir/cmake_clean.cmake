file(REMOVE_RECURSE
  "CMakeFiles/mr_rpq_test.dir/tests/mr_rpq_test.cc.o"
  "CMakeFiles/mr_rpq_test.dir/tests/mr_rpq_test.cc.o.d"
  "mr_rpq_test"
  "mr_rpq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_rpq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
