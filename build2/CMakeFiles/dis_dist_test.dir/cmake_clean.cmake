file(REMOVE_RECURSE
  "CMakeFiles/dis_dist_test.dir/tests/dis_dist_test.cc.o"
  "CMakeFiles/dis_dist_test.dir/tests/dis_dist_test.cc.o.d"
  "dis_dist_test"
  "dis_dist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dis_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
