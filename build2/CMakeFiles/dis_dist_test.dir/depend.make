# Empty dependencies file for dis_dist_test.
# This may be replaced when dependencies are built.
