file(REMOVE_RECURSE
  "CMakeFiles/reach_index_test.dir/tests/reach_index_test.cc.o"
  "CMakeFiles/reach_index_test.dir/tests/reach_index_test.cc.o.d"
  "reach_index_test"
  "reach_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
