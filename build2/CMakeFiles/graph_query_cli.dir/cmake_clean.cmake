file(REMOVE_RECURSE
  "CMakeFiles/graph_query_cli.dir/examples/graph_query_cli.cpp.o"
  "CMakeFiles/graph_query_cli.dir/examples/graph_query_cli.cpp.o.d"
  "graph_query_cli"
  "graph_query_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_query_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
