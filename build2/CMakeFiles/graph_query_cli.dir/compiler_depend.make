# Empty compiler generated dependencies file for graph_query_cli.
# This may be replaced when dependencies are built.
