# Empty compiler generated dependencies file for parcel_routing.
# This may be replaced when dependencies are built.
