file(REMOVE_RECURSE
  "CMakeFiles/parcel_routing.dir/examples/parcel_routing.cpp.o"
  "CMakeFiles/parcel_routing.dir/examples/parcel_routing.cpp.o.d"
  "parcel_routing"
  "parcel_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
