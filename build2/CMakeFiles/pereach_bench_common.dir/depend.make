# Empty dependencies file for pereach_bench_common.
# This may be replaced when dependencies are built.
