file(REMOVE_RECURSE
  "CMakeFiles/pereach_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/pereach_bench_common.dir/bench/bench_common.cc.o.d"
  "libpereach_bench_common.a"
  "libpereach_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pereach_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
