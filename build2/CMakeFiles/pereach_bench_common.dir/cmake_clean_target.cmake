file(REMOVE_RECURSE
  "libpereach_bench_common.a"
)
