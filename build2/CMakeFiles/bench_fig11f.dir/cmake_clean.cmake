file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11f.dir/bench/bench_fig11f.cc.o"
  "CMakeFiles/bench_fig11f.dir/bench/bench_fig11f.cc.o.d"
  "bench_fig11f"
  "bench_fig11f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
