# Empty dependencies file for bench_fig11f.
# This may be replaced when dependencies are built.
