# Empty compiler generated dependencies file for bench_fig11h.
# This may be replaced when dependencies are built.
