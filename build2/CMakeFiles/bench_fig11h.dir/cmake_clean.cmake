file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11h.dir/bench/bench_fig11h.cc.o"
  "CMakeFiles/bench_fig11h.dir/bench/bench_fig11h.cc.o.d"
  "bench_fig11h"
  "bench_fig11h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
