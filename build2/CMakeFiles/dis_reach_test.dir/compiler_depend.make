# Empty compiler generated dependencies file for dis_reach_test.
# This may be replaced when dependencies are built.
