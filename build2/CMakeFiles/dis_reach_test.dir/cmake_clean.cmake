file(REMOVE_RECURSE
  "CMakeFiles/dis_reach_test.dir/tests/dis_reach_test.cc.o"
  "CMakeFiles/dis_reach_test.dir/tests/dis_reach_test.cc.o.d"
  "dis_reach_test"
  "dis_reach_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dis_reach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
