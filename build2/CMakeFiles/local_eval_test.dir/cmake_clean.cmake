file(REMOVE_RECURSE
  "CMakeFiles/local_eval_test.dir/tests/local_eval_test.cc.o"
  "CMakeFiles/local_eval_test.dir/tests/local_eval_test.cc.o.d"
  "local_eval_test"
  "local_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
