# Empty compiler generated dependencies file for local_eval_test.
# This may be replaced when dependencies are built.
