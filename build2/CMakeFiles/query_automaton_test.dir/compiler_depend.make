# Empty compiler generated dependencies file for query_automaton_test.
# This may be replaced when dependencies are built.
