file(REMOVE_RECURSE
  "CMakeFiles/query_automaton_test.dir/tests/query_automaton_test.cc.o"
  "CMakeFiles/query_automaton_test.dir/tests/query_automaton_test.cc.o.d"
  "query_automaton_test"
  "query_automaton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
