file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_demo.dir/examples/mapreduce_demo.cpp.o"
  "CMakeFiles/mapreduce_demo.dir/examples/mapreduce_demo.cpp.o.d"
  "mapreduce_demo"
  "mapreduce_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
