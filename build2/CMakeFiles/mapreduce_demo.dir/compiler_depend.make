# Empty compiler generated dependencies file for mapreduce_demo.
# This may be replaced when dependencies are built.
