file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11k.dir/bench/bench_fig11k.cc.o"
  "CMakeFiles/bench_fig11k.dir/bench/bench_fig11k.cc.o.d"
  "bench_fig11k"
  "bench_fig11k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
