# Empty compiler generated dependencies file for bench_fig11k.
# This may be replaced when dependencies are built.
