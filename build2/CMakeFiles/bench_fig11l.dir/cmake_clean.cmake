file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11l.dir/bench/bench_fig11l.cc.o"
  "CMakeFiles/bench_fig11l.dir/bench/bench_fig11l.cc.o.d"
  "bench_fig11l"
  "bench_fig11l.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11l.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
