# Empty compiler generated dependencies file for bench_fig11l.
# This may be replaced when dependencies are built.
