file(REMOVE_RECURSE
  "CMakeFiles/dis_rpq_test.dir/tests/dis_rpq_test.cc.o"
  "CMakeFiles/dis_rpq_test.dir/tests/dis_rpq_test.cc.o.d"
  "dis_rpq_test"
  "dis_rpq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dis_rpq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
