# Empty compiler generated dependencies file for dis_rpq_test.
# This may be replaced when dependencies are built.
