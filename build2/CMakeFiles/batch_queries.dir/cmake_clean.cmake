file(REMOVE_RECURSE
  "CMakeFiles/batch_queries.dir/examples/batch_queries.cpp.o"
  "CMakeFiles/batch_queries.dir/examples/batch_queries.cpp.o.d"
  "batch_queries"
  "batch_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
