# Empty compiler generated dependencies file for batch_queries.
# This may be replaced when dependencies are built.
