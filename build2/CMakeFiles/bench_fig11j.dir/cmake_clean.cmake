file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11j.dir/bench/bench_fig11j.cc.o"
  "CMakeFiles/bench_fig11j.dir/bench/bench_fig11j.cc.o.d"
  "bench_fig11j"
  "bench_fig11j.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11j.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
