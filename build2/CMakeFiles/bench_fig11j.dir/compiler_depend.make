# Empty compiler generated dependencies file for bench_fig11j.
# This may be replaced when dependencies are built.
