file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11e.dir/bench/bench_fig11e.cc.o"
  "CMakeFiles/bench_fig11e.dir/bench/bench_fig11e.cc.o.d"
  "bench_fig11e"
  "bench_fig11e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
