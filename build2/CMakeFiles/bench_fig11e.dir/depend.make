# Empty dependencies file for bench_fig11e.
# This may be replaced when dependencies are built.
