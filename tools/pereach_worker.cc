// pereach_worker — hosts ONE fragment of a pereach deployment and serves
// coordinator rounds over a socket (DESIGN.md §13). Two modes:
//
//   pereach_worker --fd=N             serve an inherited socket (spawn mode;
//                                     the coordinator forks this binary over
//                                     a socketpair)
//   pereach_worker --listen=unix:PATH accept coordinator connections on a
//                                     Unix-domain socket
//   pereach_worker --listen=PORT      accept coordinator connections on TCP
//                                     0.0.0.0:PORT
//
// The worker is stateless until the coordinator's Hello ships it a fragment;
// kSync replaces the fragment after graph updates. Listen mode serves one
// connection at a time (there is one coordinator) and keeps accepting after
// a disconnect, so a restarted coordinator can re-attach.

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/net/worker_loop.h"

namespace {

int ListenUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("pereach_worker: socket");
    return -1;
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "pereach_worker: unix path too long: %s\n",
                 path.c_str());
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 1) != 0) {
    std::perror("pereach_worker: bind/listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int ListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("pereach_worker: socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 1) != 0) {
    std::perror("pereach_worker: bind/listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pereach_worker --fd=N | --listen=unix:PATH | "
               "--listen=PORT\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // A coordinator disappearing mid-write must surface as a send error, not
  // kill the worker.
  ::signal(SIGPIPE, SIG_IGN);

  if (argc != 2) return Usage();
  const std::string arg = argv[1];

  if (arg.rfind("--fd=", 0) == 0) {
    const int fd = std::atoi(arg.c_str() + 5);
    if (fd < 0) return Usage();
    pereach::ServeConnection(fd);
    return 0;
  }

  if (arg.rfind("--listen=", 0) == 0) {
    const std::string endpoint = arg.substr(9);
    const int listen_fd =
        endpoint.rfind("unix:", 0) == 0
            ? ListenUnix(endpoint.substr(5))
            : ListenTcp(std::atoi(endpoint.c_str()));
    if (listen_fd < 0) return 1;
    for (;;) {
      const int conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR) continue;
        std::perror("pereach_worker: accept");
        return 1;
      }
      pereach::ServeConnection(conn);  // closes conn when the peer is done
    }
  }

  return Usage();
}
