// Fig. 11(b): reachability on synthetic graphs following the densification
// law, card(F) = 8, varying the average fragment size size(F) from 35K to
// 315K (nodes + edges). All algorithms slow down as fragments grow;
// disReach stays least sensitive.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/dis_mp.h"
#include "src/baselines/dis_naive.h"
#include "src/core/dis_reach.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.1, 5);
  const size_t kFragments = 8;

  PrintHeader("Fig 11(b): q_r on synthetic, card(F) = 8, varying size(F)",
              {"size(F)", "disReach", "disReachn", "disReachm"});

  // The paper sweeps per-fragment sizes 35K..315K in 40K steps.
  for (size_t size_f = 35'000; size_f <= 315'000; size_f += 40'000) {
    const size_t target = static_cast<size_t>(
        static_cast<double>(size_f) * kFragments * opts.scale);
    // Densification-law growth: |E| ≈ 1.5 |V| at these settings, so solve
    // |V| + |E| = target with |E| = 1.5 |V|.
    const size_t n = std::max<size_t>(64, target / 3);
    Rng rng(opts.seed + size_f);
    const Graph g = ForestFire(n, 0.38, 1, &rng);
    const std::vector<SiteId> part =
        RandomPartitioner().Partition(g, kFragments, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, kFragments);
    Cluster cluster(&frag, BenchNetwork());
    const std::vector<std::pair<NodeId, NodeId>> pairs =
        MakeQueryPairs(g, opts.queries, &rng);

    const AveragedRun pe = Average(pairs, [&](NodeId s, NodeId t) {
      return DisReach(&cluster, {s, t});
    });
    const AveragedRun naive = Average(pairs, [&](NodeId s, NodeId t) {
      return DisReachNaive(&cluster, {s, t});
    });
    const AveragedRun mp = Average(pairs, [&](NodeId s, NodeId t) {
      return DisReachMp(&cluster, {s, t});
    });

    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%zuK(x%.2f)", size_f / 1000,
                  opts.scale);
    PrintRow({size_buf, FormatMs(pe.metrics.modeled_ms),
              FormatMs(naive.metrics.modeled_ms),
              FormatMs(mp.metrics.modeled_ms)});
  }
  std::printf(
      "\nPaper shape: all grow with size(F); disReach grows slowest.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
