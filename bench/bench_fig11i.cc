// Fig. 11(i): regular reachability on a synthetic labeled graph (the paper
// uses 1.2M nodes / 4.8M edges), varying card(F) from 6 to 20. More
// fragments -> smaller parallel partial evaluation -> all three algorithms
// get faster; disRPQ improves the most (the paper reports a 75% drop from
// card(F) = 6 to 20).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.05, 5);
  const size_t kLabels = 8;

  Rng rng(opts.seed);
  const size_t n = static_cast<size_t>(1'200'000 * opts.scale);
  const size_t m = static_cast<size_t>(4'800'000 * opts.scale);
  const Graph g = ErdosRenyi(n, m, kLabels, &rng);
  std::printf("synthetic at scale %.3f: %zu nodes, %zu edges\n", opts.scale,
              g.NumNodes(), g.NumEdges());

  const RegularWorkload workload =
      MakeRegularWorkload(g, opts.queries, 6, kLabels, &rng);

  PrintHeader("Fig 11(i): q_rr on synthetic, varying card(F)",
              {"card(F)", "disRPQ", "disRPQd", "disRPQn"});

  for (size_t k = 6; k <= 20; k += 2) {
    const std::vector<SiteId> part = RandomPartitioner().Partition(g, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, BenchNetwork());
    const RegularComparison cmp = RunRegularComparison(&cluster, workload);

    char kbuf[16];
    std::snprintf(kbuf, sizeof(kbuf), "%zu", k);
    PrintRow({kbuf, FormatMs(cmp.rpq.modeled_ms),
              FormatMs(cmp.suciu.modeled_ms), FormatMs(cmp.naive.modeled_ms)});
  }
  std::printf(
      "\nPaper shape: all fall with card(F); disRPQ drops most (~75%% from "
      "6 to 20).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
