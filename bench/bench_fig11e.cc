// Fig. 11(e): regular reachability response time on the four labeled
// datasets (Youtube, MEME, Citation, Internet) with their paper card(F)
// values, queries of complexity (|Vq| = 8, |Eq| ≈ 16, |Lq| = 8).
// disRPQ < disRPQd < disRPQn.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

size_t PaperCardF(Dataset d) {
  switch (d) {
    case Dataset::kCitation:
      return 10;
    case Dataset::kMeme:
      return 11;
    case Dataset::kYoutube:
      return 12;
    case Dataset::kInternet:
      return 10;
    default:
      return 10;
  }
}

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.02, 5);

  PrintHeader("Fig 11(e): q_rr response time on labeled datasets",
              {"dataset", "disRPQ", "disRPQd", "disRPQn", "|Vq|"});

  for (Dataset d : RegularDatasets()) {
    Rng rng(opts.seed);
    const Graph g = MakeDataset(d, opts.scale, &rng);
    const size_t k = PaperCardF(d);
    const std::vector<SiteId> part = ChunkPartitioner().Partition(g, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, BenchNetwork());

    // (|Vq| = 8, |Eq| = 16, |Lq| = 8): 6 symbol positions + u_s + u_t.
    const RegularWorkload workload =
        MakeRegularWorkload(g, opts.queries, /*num_symbols=*/6,
                            /*num_labels=*/8, &rng);
    const RegularComparison cmp = RunRegularComparison(&cluster, workload);

    char vq[16];
    std::snprintf(vq, sizeof(vq), "%zu", workload.automata[0].num_states());
    PrintRow({DatasetName(d), FormatMs(cmp.rpq.modeled_ms),
              FormatMs(cmp.suciu.modeled_ms), FormatMs(cmp.naive.modeled_ms),
              vq});
  }
  std::printf(
      "\nPaper shape: disRPQ takes 56-88%% of disRPQd's time and is far "
      "below disRPQn.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
