// Fig. 11(a): reachability on LiveJournal, varying the number of fragments
// card(F) from 2 to 20. disReach and disReachn get faster with more
// fragments (smaller parallel work / parallel shipping); disReachm gets
// slower (more frequent cross-site bouncing).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/dis_mp.h"
#include "src/baselines/dis_naive.h"
#include "src/core/dis_reach.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.02, 5);

  Rng rng(opts.seed);
  const Graph g = MakeDataset(Dataset::kLiveJournal, opts.scale, &rng);
  std::printf("LiveJournal stand-in at scale %.3f: %zu nodes, %zu edges\n",
              opts.scale, g.NumNodes(), g.NumEdges());
  const std::vector<std::pair<NodeId, NodeId>> pairs =
      MakeQueryPairs(g, opts.queries, &rng);

  PrintHeader("Fig 11(a): q_r on LiveJournal, varying card(F)",
              {"card(F)", "disReach", "disReachn", "disReachm", "mp-visits"});

  for (size_t k = 2; k <= 20; k += 2) {
    const std::vector<SiteId> part = ChunkPartitioner().Partition(g, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, BenchNetwork());

    const AveragedRun pe = Average(pairs, [&](NodeId s, NodeId t) {
      return DisReach(&cluster, {s, t});
    });
    const AveragedRun naive = Average(pairs, [&](NodeId s, NodeId t) {
      return DisReachNaive(&cluster, {s, t});
    });
    const AveragedRun mp = Average(pairs, [&](NodeId s, NodeId t) {
      return DisReachMp(&cluster, {s, t});
    });

    char kbuf[16], visits[32];
    std::snprintf(kbuf, sizeof(kbuf), "%zu", k);
    std::snprintf(visits, sizeof(visits), "%zu", mp.metrics.TotalVisits());
    PrintRow({kbuf, FormatMs(pe.metrics.modeled_ms),
              FormatMs(naive.metrics.modeled_ms),
              FormatMs(mp.metrics.modeled_ms), visits});
  }
  std::printf(
      "\nPaper shape: disReach/disReachn decrease with card(F); disReachm "
      "increases.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
