// Fig. 11(c): reachability on one large synthetic graph (the paper uses
// 36M nodes / 360M edges), varying card(F) from 10 to 20 in steps of 2.
// disReach keeps getting cheaper with more fragments; disReachm keeps
// getting more expensive.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/dis_mp.h"
#include "src/core/dis_reach.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.005, 5);

  Rng rng(opts.seed);
  const size_t n = static_cast<size_t>(36'000'000 * opts.scale);
  const size_t m = static_cast<size_t>(360'000'000 * opts.scale);
  const Graph g = ErdosRenyi(n, m, 1, &rng);
  std::printf("large synthetic at scale %.4f: %zu nodes, %zu edges\n",
              opts.scale, g.NumNodes(), g.NumEdges());
  const std::vector<std::pair<NodeId, NodeId>> pairs =
      MakeQueryPairs(g, opts.queries, &rng);

  PrintHeader("Fig 11(c): q_r on large synthetic, varying card(F)",
              {"card(F)", "disReach", "disReachm", "mp-visits"});

  for (size_t k = 10; k <= 20; k += 2) {
    const std::vector<SiteId> part = RandomPartitioner().Partition(g, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, BenchNetwork());

    const AveragedRun pe = Average(pairs, [&](NodeId s, NodeId t) {
      return DisReach(&cluster, {s, t});
    });
    const AveragedRun mp = Average(pairs, [&](NodeId s, NodeId t) {
      return DisReachMp(&cluster, {s, t});
    });

    char kbuf[16], visits[32];
    std::snprintf(kbuf, sizeof(kbuf), "%zu", k);
    std::snprintf(visits, sizeof(visits), "%zu", mp.metrics.TotalVisits());
    PrintRow({kbuf, FormatMs(pe.metrics.modeled_ms),
              FormatMs(mp.metrics.modeled_ms), visits});
  }
  std::printf(
      "\nPaper shape: disReach falls with card(F); disReachm rises.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
