// Fig. 11(f): network traffic of the regular reachability algorithms on the
// four labeled datasets (log-scale in the paper). disRPQ ships the least;
// disRPQd ships dense relations (~4x more); disRPQn ships the whole graph.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

size_t PaperCardF(Dataset d) {
  switch (d) {
    case Dataset::kCitation:
      return 10;
    case Dataset::kMeme:
      return 11;
    case Dataset::kYoutube:
      return 12;
    case Dataset::kInternet:
      return 10;
    default:
      return 10;
  }
}

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.02, 5);

  PrintHeader("Fig 11(f): q_rr network traffic on labeled datasets",
              {"dataset", "disRPQ", "disRPQd", "disRPQn", "graph-size"});

  for (Dataset d : RegularDatasets()) {
    Rng rng(opts.seed);
    const Graph g = MakeDataset(d, opts.scale, &rng);
    const size_t k = PaperCardF(d);
    const std::vector<SiteId> part = ChunkPartitioner().Partition(g, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, BenchNetwork());

    const RegularWorkload workload =
        MakeRegularWorkload(g, opts.queries, 6, 8, &rng);
    const RegularComparison cmp = RunRegularComparison(&cluster, workload);

    PrintRow({DatasetName(d), FormatMb(cmp.rpq.traffic_mb()),
              FormatMb(cmp.suciu.traffic_mb()),
              FormatMb(cmp.naive.traffic_mb()),
              FormatMb(static_cast<double>(g.ByteSize()) / 1e6)});
  }
  std::printf(
      "\nPaper shape: disRPQ ships <= 25%% of disRPQd and ~3%% of disRPQn "
      "on average.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
