// Batched query evaluation: k reachability queries per EvaluateBatch versus
// the same k queries run sequentially through single-query Evaluate. The
// batch pays one communication round (2 latencies + one transfer) and ships
// each fragment's oset table once instead of k times, so both total modeled
// response time and total traffic drop; the per-fragment FragmentContext
// cache additionally amortizes the SCC condensation and closure rows across
// the whole batch. The ship-all baseline (graph shipped once per batch) is
// included for contrast.

#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "src/engine/baseline_engines.h"
#include "src/engine/partial_eval_engine.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  bool boundary_index = false;
  const BenchOptions opts = BenchOptions::Parse(
      argc, argv, 0.05, 64, [&boundary_index](const char* arg) {
        if (std::strcmp(arg, "--boundary-index") == 0) {
          boundary_index = true;
          return true;
        }
        return false;
      });

  Rng rng(opts.seed);
  const Graph g = MakeDataset(Dataset::kLiveJournal, opts.scale, &rng);
  const size_t k_sites = 8;
  std::printf("LiveJournal stand-in at scale %.3f: %zu nodes, %zu edges, "
              "%zu sites\n",
              opts.scale, g.NumNodes(), g.NumEdges(), k_sites);

  const std::vector<SiteId> part =
      ChunkPartitioner().Partition(g, k_sites, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, k_sites);
  Cluster cluster(&frag, BenchNetwork());
  PartialEvalOptions engine_options;  // kAuto: DAG form wins on this graph
  if (boundary_index) {
    engine_options.reach_path = ReachAnswerPath::kBoundaryIndex;
    engine_options.dist_path = DistAnswerPath::kBoundaryIndex;
    engine_options.rpq_path = RpqAnswerPath::kBoundaryIndex;
  }
  PartialEvalEngine engine(&cluster, engine_options);
  NaiveShipAllEngine naive(&cluster);
  if (boundary_index) {
    std::printf("reach/dist/rpq path: boundary index (coordinator label + "
                "weighted graph + per-automaton product graphs over the "
                "boundary; no per-query BES)\n");
  }

  const std::vector<std::pair<NodeId, NodeId>> pairs =
      MakeQueryPairs(g, opts.queries, &rng);
  std::vector<Query> workload;
  workload.reserve(pairs.size());
  for (const auto& [s, t] : pairs) workload.push_back(Query::Reach(s, t));

  // Warm the per-fragment caches once so every batch-size row is comparable;
  // otherwise the one-time context builds are charged entirely to the first
  // row's modeled site compute.
  engine.EvaluateBatch(std::span<const Query>(workload.data(), 1));

  PrintHeader(
      "Batched q_r: one round per batch vs one round per query",
      {"batch", "rounds", "total-ms", "ms/query", "traffic", "naive-ms"});

  RunMetrics singles_total;  // batch_size == 1 row, for the JSON artifact
  RunMetrics best_total;     // largest batch row
  for (size_t batch_size = 1; batch_size <= workload.size(); batch_size *= 4) {
    // Run the workload in batches of `batch_size`, accumulating totals.
    RunMetrics total;
    RunMetrics naive_total;
    for (size_t base = 0; base < workload.size(); base += batch_size) {
      const size_t count = std::min(batch_size, workload.size() - base);
      const std::span<const Query> chunk(workload.data() + base, count);
      total.Accumulate(engine.EvaluateBatch(chunk).metrics);
      naive_total.Accumulate(naive.EvaluateBatch(chunk).metrics);
    }

    char bbuf[16], rbuf[16], per_query[24];
    std::snprintf(bbuf, sizeof(bbuf), "%zu", batch_size);
    std::snprintf(rbuf, sizeof(rbuf), "%zu", total.rounds);
    std::snprintf(per_query, sizeof(per_query), "%s",
                  FormatMs(total.modeled_ms /
                           static_cast<double>(workload.size())).c_str());
    PrintRow({bbuf, rbuf, FormatMs(total.modeled_ms), per_query,
              FormatMb(total.traffic_mb()), FormatMs(naive_total.modeled_ms)});
    if (batch_size == 1) singles_total = total;
    best_total = total;
  }

  std::printf(
      "\nExpected shape: rounds fall to 1/batch; traffic strictly decreases "
      "(shared oset tables); total modeled time drops toward the "
      "compute-bound plateau as the per-round latency amortizes. Ship-all "
      "amortizes its |G| transfer but keeps paying centralized evaluation "
      "per query.\n");

  // Dist series (the same endpoint pairs as bounded-reach queries): one
  // full-size batch through the same engine, so each JSON file carries a
  // dist row for its reach path — BES assembling without --boundary-index,
  // the standing weighted boundary graph with it.
  constexpr uint32_t kDistBound = 8;
  std::vector<Query> dist_workload;
  dist_workload.reserve(pairs.size());
  for (const auto& [s, t] : pairs) {
    dist_workload.push_back(Query::Dist(s, t, kDistBound));
  }
  // Warm the dist rows / standing graph outside the measured window, like
  // the reach warm-up above.
  engine.EvaluateBatch(std::span<const Query>(dist_workload.data(), 1));
  const RunMetrics dist_total = engine.EvaluateBatch(dist_workload).metrics;
  PrintHeader("Batched q_br (dist), one full-size batch",
              {"path", "rounds", "total-ms", "traffic"});
  char dist_rounds[16];
  std::snprintf(dist_rounds, sizeof(dist_rounds), "%zu", dist_total.rounds);
  PrintRow({boundary_index ? "boundary-index" : "bes", dist_rounds,
            FormatMs(dist_total.modeled_ms),
            FormatMb(dist_total.traffic_mb())});

  // Rpq series (the same endpoint pairs as regular queries): automata drawn
  // from a small pool — the serving-realistic shape, regexes repeat — so
  // the signature caches engage under --boundary-index. One warm batch
  // installs the standing product graphs (the refresh round); the measured
  // batch is the steady-serving cost the index amortizes toward.
  // Automata over the dataset's own (single-label) alphabet, so every
  // interior state matches real nodes and the per-query product the BES
  // path rebuilds at every site is full-size — the regime the standing
  // product graphs exist for.
  constexpr size_t kDistinctAutomata = 4;
  std::vector<QueryAutomaton> automata;
  automata.reserve(kDistinctAutomata);
  for (size_t i = 0; i < kDistinctAutomata; ++i) {
    automata.push_back(MakeRandomAutomaton(3, 1, &rng));
  }
  std::vector<Query> rpq_workload;
  rpq_workload.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    rpq_workload.push_back(Query::Rpq(pairs[i].first, pairs[i].second,
                                      automata[i % kDistinctAutomata]));
  }
  engine.EvaluateBatch(
      std::span<const Query>(rpq_workload.data(),
                             std::min<size_t>(kDistinctAutomata,
                                              rpq_workload.size())));
  const RunMetrics rpq_total = engine.EvaluateBatch(rpq_workload).metrics;
  PrintHeader("Batched q_rr (rpq), one full-size batch",
              {"path", "rounds", "total-ms", "traffic"});
  char rpq_rounds[16];
  std::snprintf(rpq_rounds, sizeof(rpq_rounds), "%zu", rpq_total.rounds);
  PrintRow({boundary_index ? "boundary-index" : "bes", rpq_rounds,
            FormatMs(rpq_total.modeled_ms),
            FormatMb(rpq_total.traffic_mb())});

  WriteBenchJson(opts.json_path,
                 boundary_index ? "bench_batch+boundary-index" : "bench_batch",
                 {{"queries", static_cast<double>(workload.size())},
                  {"seed", static_cast<double>(opts.seed)},
                  {"boundary_index", boundary_index ? 1.0 : 0.0},
                  {"singles_modeled_ms", singles_total.modeled_ms},
                  {"singles_traffic_mb", singles_total.traffic_mb()},
                  {"batched_modeled_ms", best_total.modeled_ms},
                  {"batched_traffic_mb", best_total.traffic_mb()},
                  {"batched_rounds", static_cast<double>(best_total.rounds)},
                  {"dist_batched_modeled_ms", dist_total.modeled_ms},
                  {"dist_batched_traffic_mb", dist_total.traffic_mb()},
                  {"dist_bound", static_cast<double>(kDistBound)},
                  {"rpq_batched_modeled_ms", rpq_total.modeled_ms},
                  {"rpq_batched_traffic_mb", rpq_total.traffic_mb()},
                  {"rpq_distinct_automata",
                   static_cast<double>(kDistinctAutomata)}});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
