// Batched query evaluation: k reachability queries per EvaluateBatch versus
// the same k queries run sequentially through single-query Evaluate. The
// batch pays one communication round (2 latencies + one transfer) and ships
// each fragment's oset table once instead of k times, so both total modeled
// response time and total traffic drop; the per-fragment FragmentContext
// cache additionally amortizes the SCC condensation and closure rows across
// the whole batch. The ship-all baseline (graph shipped once per batch) is
// included for contrast.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "src/engine/baseline_engines.h"
#include "src/engine/partial_eval_engine.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  bool boundary_index = false;
  bool sweep = true;           // --sweep=on|off: bit-parallel batch words
  size_t shortcut_budget = 64;  // --shortcut-budget=N: 0 disables shortcuts
  const BenchOptions opts = BenchOptions::Parse(
      argc, argv, 0.05, 64,
      [&boundary_index, &sweep, &shortcut_budget](const char* arg) {
        if (std::strcmp(arg, "--boundary-index") == 0) {
          boundary_index = true;
          return true;
        }
        if (std::strncmp(arg, "--sweep=", 8) == 0) {
          sweep = std::strcmp(arg + 8, "off") != 0;
          return true;
        }
        if (std::strncmp(arg, "--shortcut-budget=", 18) == 0) {
          shortcut_budget = static_cast<size_t>(std::atoll(arg + 18));
          return true;
        }
        return false;
      });

  Rng rng(opts.seed);
  const Graph g = MakeDataset(Dataset::kLiveJournal, opts.scale, &rng);
  const size_t k_sites = 8;
  std::printf("LiveJournal stand-in at scale %.3f: %zu nodes, %zu edges, "
              "%zu sites\n",
              opts.scale, g.NumNodes(), g.NumEdges(), k_sites);

  const std::vector<SiteId> part =
      ChunkPartitioner().Partition(g, k_sites, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, k_sites);
  Cluster cluster(&frag, BenchNetwork());
  PartialEvalOptions engine_options;  // kAuto: DAG form wins on this graph
  engine_options.batch_sweep = sweep;
  engine_options.shortcut_budget = shortcut_budget;
  if (boundary_index) {
    engine_options.reach_path = ReachAnswerPath::kBoundaryIndex;
    engine_options.dist_path = DistAnswerPath::kBoundaryIndex;
    engine_options.rpq_path = RpqAnswerPath::kBoundaryIndex;
  }
  PartialEvalEngine engine(&cluster, engine_options);
  NaiveShipAllEngine naive(&cluster);
  if (boundary_index) {
    std::printf("reach/dist/rpq path: boundary index (coordinator label + "
                "weighted graph + per-automaton product graphs over the "
                "boundary; no per-query BES)\n");
  }

  const std::vector<std::pair<NodeId, NodeId>> pairs =
      MakeQueryPairs(g, opts.queries, &rng);
  std::vector<Query> workload;
  workload.reserve(pairs.size());
  for (const auto& [s, t] : pairs) workload.push_back(Query::Reach(s, t));

  // Warm the per-fragment caches once so every batch-size row is comparable;
  // otherwise the one-time context builds are charged entirely to the first
  // row's modeled site compute.
  engine.EvaluateBatch(std::span<const Query>(workload.data(), 1));

  PrintHeader(
      "Batched q_r: one round per batch vs one round per query",
      {"batch", "rounds", "total-ms", "ms/query", "traffic", "naive-ms"});

  RunMetrics singles_total;  // batch_size == 1 row, for the JSON artifact
  RunMetrics best_total;     // largest batch row
  for (size_t batch_size = 1; batch_size <= workload.size(); batch_size *= 4) {
    // Run the workload in batches of `batch_size`, accumulating totals.
    RunMetrics total;
    RunMetrics naive_total;
    for (size_t base = 0; base < workload.size(); base += batch_size) {
      const size_t count = std::min(batch_size, workload.size() - base);
      const std::span<const Query> chunk(workload.data() + base, count);
      total.Accumulate(engine.EvaluateBatch(chunk).metrics);
      naive_total.Accumulate(naive.EvaluateBatch(chunk).metrics);
    }

    char bbuf[16], rbuf[16], per_query[24];
    std::snprintf(bbuf, sizeof(bbuf), "%zu", batch_size);
    std::snprintf(rbuf, sizeof(rbuf), "%zu", total.rounds);
    std::snprintf(per_query, sizeof(per_query), "%s",
                  FormatMs(total.modeled_ms /
                           static_cast<double>(workload.size())).c_str());
    PrintRow({bbuf, rbuf, FormatMs(total.modeled_ms), per_query,
              FormatMb(total.traffic_mb()), FormatMs(naive_total.modeled_ms)});
    if (batch_size == 1) singles_total = total;
    best_total = total;
  }

  std::printf(
      "\nExpected shape: rounds fall to 1/batch; traffic strictly decreases "
      "(shared oset tables); total modeled time drops toward the "
      "compute-bound plateau as the per-round latency amortizes. Ship-all "
      "amortizes its |G| transfer but keeps paying centralized evaluation "
      "per query.\n");

  // Dist series (the same endpoint pairs as bounded-reach queries): one
  // full-size batch through the same engine, so each JSON file carries a
  // dist row for its reach path — BES assembling without --boundary-index,
  // the standing weighted boundary graph with it.
  constexpr uint32_t kDistBound = 8;
  std::vector<Query> dist_workload;
  dist_workload.reserve(pairs.size());
  for (const auto& [s, t] : pairs) {
    dist_workload.push_back(Query::Dist(s, t, kDistBound));
  }
  // Warm the dist rows / standing graph outside the measured window, like
  // the reach warm-up above.
  engine.EvaluateBatch(std::span<const Query>(dist_workload.data(), 1));
  const RunMetrics dist_total = engine.EvaluateBatch(dist_workload).metrics;
  PrintHeader("Batched q_br (dist), one full-size batch",
              {"path", "rounds", "total-ms", "traffic"});
  char dist_rounds[16];
  std::snprintf(dist_rounds, sizeof(dist_rounds), "%zu", dist_total.rounds);
  PrintRow({boundary_index ? "boundary-index" : "bes", dist_rounds,
            FormatMs(dist_total.modeled_ms),
            FormatMb(dist_total.traffic_mb())});

  // Rpq series (the same endpoint pairs as regular queries): automata drawn
  // from a small pool — the serving-realistic shape, regexes repeat — so
  // the signature caches engage under --boundary-index. One warm batch
  // installs the standing product graphs (the refresh round); the measured
  // batch is the steady-serving cost the index amortizes toward.
  // Automata over the dataset's own (single-label) alphabet, so every
  // interior state matches real nodes and the per-query product the BES
  // path rebuilds at every site is full-size — the regime the standing
  // product graphs exist for.
  constexpr size_t kDistinctAutomata = 4;
  std::vector<QueryAutomaton> automata;
  automata.reserve(kDistinctAutomata);
  for (size_t i = 0; i < kDistinctAutomata; ++i) {
    automata.push_back(MakeRandomAutomaton(3, 1, &rng));
  }
  std::vector<Query> rpq_workload;
  rpq_workload.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    rpq_workload.push_back(Query::Rpq(pairs[i].first, pairs[i].second,
                                      automata[i % kDistinctAutomata]));
  }
  engine.EvaluateBatch(
      std::span<const Query>(rpq_workload.data(),
                             std::min<size_t>(kDistinctAutomata,
                                              rpq_workload.size())));
  const RunMetrics rpq_total = engine.EvaluateBatch(rpq_workload).metrics;
  PrintHeader("Batched q_rr (rpq), one full-size batch",
              {"path", "rounds", "total-ms", "traffic"});
  char rpq_rounds[16];
  std::snprintf(rpq_rounds, sizeof(rpq_rounds), "%zu", rpq_total.rounds);
  PrintRow({boundary_index ? "boundary-index" : "bes", rpq_rounds,
            FormatMs(rpq_total.modeled_ms),
            FormatMb(rpq_total.traffic_mb())});

  std::vector<std::pair<std::string, double>> metrics = {
      {"queries", static_cast<double>(workload.size())},
      {"seed", static_cast<double>(opts.seed)},
      {"boundary_index", boundary_index ? 1.0 : 0.0},
      {"batch_sweep", sweep ? 1.0 : 0.0},
      {"shortcut_budget", static_cast<double>(shortcut_budget)},
      {"singles_modeled_ms", singles_total.modeled_ms},
      {"singles_traffic_mb", singles_total.traffic_mb()},
      {"batched_modeled_ms", best_total.modeled_ms},
      {"batched_traffic_mb", best_total.traffic_mb()},
      {"batched_rounds", static_cast<double>(best_total.rounds)},
      {"dist_batched_modeled_ms", dist_total.modeled_ms},
      {"dist_batched_traffic_mb", dist_total.traffic_mb()},
      {"dist_bound", static_cast<double>(kDistBound)},
      {"rpq_batched_modeled_ms", rpq_total.modeled_ms},
      {"rpq_batched_traffic_mb", rpq_total.traffic_mb()},
      {"rpq_distinct_automata", static_cast<double>(kDistinctAutomata)}};

  // Coordinator-core wall clock: the same 64 boundary questions answered as
  // 64 scalar ReachesAny calls vs one 64-lane AnswerBatch word. This is the
  // host-CPU cost the modeled figures fold into site compute — the number
  // the bit-parallel sweep exists to shrink — measured directly against the
  // standing index the reach workload above just built.
  if (boundary_index) {
    BoundaryReachIndex* idx = engine.mutable_boundary_index();
    std::vector<NodeId> universe;
    if (idx != nullptr && !idx->dirty()) {
      for (SiteId site = 0; site < k_sites; ++site) {
        const std::vector<NodeId>& oset = idx->oset_globals(site);
        universe.insert(universe.end(), oset.begin(), oset.end());
      }
    }
    if (universe.size() >= 2) {
      constexpr size_t kLanes = 64;
      std::vector<NodeId> q_src(kLanes), q_tgt(kLanes);
      std::vector<BoundaryReachIndex::ReachQuestion> questions(kLanes);
      for (size_t i = 0; i < kLanes; ++i) {
        q_src[i] = universe[rng.Uniform(universe.size())];
        q_tgt[i] = universe[rng.Uniform(universe.size())];
        questions[i] = {std::span<const NodeId>(&q_src[i], 1),
                        std::span<const NodeId>(&q_tgt[i], 1)};
      }

      // Calibrate the repetition count on the scalar path (>= 10 ms), then
      // take the best of three timed runs for each path.
      size_t scalar_true = 0;
      size_t iters = 1;
      for (;;) {
        StopWatch w;
        for (size_t it = 0; it < iters; ++it) {
          scalar_true = 0;
          for (size_t i = 0; i < kLanes; ++i) {
            scalar_true += idx->ReachesAny(questions[i].sources,
                                           questions[i].targets);
          }
        }
        if (w.ElapsedMs() >= 10.0 || iters >= (size_t{1} << 22)) break;
        iters *= 2;
      }
      double scalar_ms = 0, sweep_ms = 0;
      std::vector<uint8_t> answers;
      for (int rep = 0; rep < 3; ++rep) {
        StopWatch w;
        for (size_t it = 0; it < iters; ++it) {
          size_t trues = 0;
          for (size_t i = 0; i < kLanes; ++i) {
            trues += idx->ReachesAny(questions[i].sources,
                                     questions[i].targets);
          }
          PEREACH_CHECK_EQ(trues, scalar_true);
        }
        const double ms = w.ElapsedMs() / static_cast<double>(iters);
        scalar_ms = rep == 0 ? ms : std::min(scalar_ms, ms);
      }
      const size_t depth_before = idx->sweep_depth();
      idx->AnswerBatch(questions, &answers);
      const size_t word_depth = idx->sweep_depth() - depth_before;
      size_t sweep_true = 0;
      for (uint8_t a : answers) sweep_true += a;
      PEREACH_CHECK_EQ(sweep_true, scalar_true);  // the two paths must agree
      for (int rep = 0; rep < 3; ++rep) {
        StopWatch w;
        for (size_t it = 0; it < iters; ++it) {
          idx->AnswerBatch(questions, &answers);
        }
        const double ms = w.ElapsedMs() / static_cast<double>(iters);
        sweep_ms = rep == 0 ? ms : std::min(sweep_ms, ms);
      }

      PrintHeader(
          "Coordinator core: 64 scalar ReachesAny vs one 64-lane word",
          {"path", "wall-ms/64q", "sweep-depth", "shortcuts"});
      char depth_buf[16], sc_buf[16];
      std::snprintf(depth_buf, sizeof(depth_buf), "%zu", word_depth);
      std::snprintf(sc_buf, sizeof(sc_buf), "%zu", idx->shortcut_count());
      PrintRow({"scalar x64", FormatMs(scalar_ms), "-", "-"});
      PrintRow({"batch word", FormatMs(sweep_ms), depth_buf, sc_buf});

      metrics.emplace_back("reach_coord_scalar64_ms", scalar_ms);
      metrics.emplace_back("reach_coord_sweep64_ms", sweep_ms);
      metrics.emplace_back("reach_sweep_depth",
                           static_cast<double>(word_depth));
      metrics.emplace_back("reach_shortcut_count",
                           static_cast<double>(idx->shortcut_count()));
    } else {
      std::printf("\n(no boundary universe at this scale; skipping the "
                  "coordinator-core word measurement)\n");
    }
  }

  WriteBenchJson(opts.json_path,
                 boundary_index ? "bench_batch+boundary-index" : "bench_batch",
                 metrics);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
