#ifndef PEREACH_BENCH_BENCH_COMMON_H_
#define PEREACH_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/answer.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/net/cluster.h"
#include "src/net/metrics.h"
#include "src/regex/query_automaton.h"
#include "src/util/common.h"
#include "src/util/random.h"

namespace pereach {
namespace bench {

/// Command-line knobs shared by every figure/table harness:
///   --scale=<f>    dataset scale factor (default per harness)
///   --queries=<n>  queries per measurement point
///   --seed=<n>     RNG seed
///   --json=<path>  write machine-readable results (CI perf artifact)
/// Unknown flags CHECK-fail with a usage message. Harnesses with extra
/// flags (bench_server's --clients/--window-us) pass an `extra` handler
/// that claims them, so every bench parses the shared flags — notably
/// --seed, which CI relies on for reproducible smoke runs — identically.
struct BenchOptions {
  double scale = 0.05;
  size_t queries = 10;
  uint64_t seed = 42;
  std::string json_path;  // empty = no JSON output

  static BenchOptions Parse(int argc, char** argv, double default_scale,
                            size_t default_queries);
  static BenchOptions Parse(int argc, char** argv, double default_scale,
                            size_t default_queries,
                            const std::function<bool(const char*)>& extra);
};

/// Pulls a `--seed=<n>` flag out of argv (compacting it), returning the
/// seed or `default_seed`. For harnesses whose remaining flags belong to
/// another parser (bench_micro hands argv to Google Benchmark).
uint64_t ExtractSeedFlag(int* argc, char** argv, uint64_t default_seed);

/// Writes `{"bench": <name>, "metrics": {k: v, ...}}` to `path` (one JSON
/// object per file; the CI smoke job merges the per-bench files into
/// BENCH_pr.json). No-op when `path` is empty.
void WriteBenchJson(const std::string& path, const std::string& name,
                    const std::vector<std::pair<std::string, double>>& metrics);

/// The default network model used by every figure (documented in
/// EXPERIMENTS.md): 5 ms one-way latency, 100 MB/s coordinator link.
NetworkModel BenchNetwork();

/// Random query endpoints biased toward the paper's ~30% true rate:
/// half the pairs are sampled (ancestor, descendant-ish) via short forward
/// walks, half uniformly.
std::vector<std::pair<NodeId, NodeId>> MakeQueryPairs(const Graph& g,
                                                      size_t count, Rng* rng);

/// Random regular query: automaton from a random regex with `num_symbols`
/// symbols over the graph's label alphabet (capped at `num_labels`).
QueryAutomaton MakeRandomAutomaton(size_t num_symbols, size_t num_labels,
                                   Rng* rng);

/// Fixed-width table printing helpers (paper-style rows).
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string FormatMs(double ms);
std::string FormatMb(double mb);

/// Averages metrics produced by a per-query runner over `pairs`, printing
/// nothing; returns (avg metrics, number of true answers).
struct AveragedRun {
  RunMetrics metrics;
  size_t true_count = 0;
};
AveragedRun Average(
    const std::vector<std::pair<NodeId, NodeId>>& pairs,
    const std::function<QueryAnswer(NodeId, NodeId)>& run_query);

/// A regular-reachability workload: random (s, t) pairs each paired with a
/// random query automaton of the requested complexity.
struct RegularWorkload {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<QueryAutomaton> automata;
};
RegularWorkload MakeRegularWorkload(const Graph& g, size_t count,
                                    size_t num_symbols, size_t num_labels,
                                    Rng* rng);

/// Runs disRPQ / disRPQn / disRPQd over one workload, averaging metrics.
struct RegularComparison {
  RunMetrics rpq;
  RunMetrics naive;
  RunMetrics suciu;
};
RegularComparison RunRegularComparison(Cluster* cluster,
                                       const RegularWorkload& workload);

}  // namespace bench
}  // namespace pereach

#endif  // PEREACH_BENCH_BENCH_COMMON_H_
