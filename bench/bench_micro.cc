// Micro/ablation benchmarks (google-benchmark) for the design choices
// DESIGN.md calls out:
//  - localEval strategy: SCC bitset propagation vs per-in-node BFS
//  - BES solving: dependency-graph BFS vs naive fixpoint iteration
//  - partial-answer encoding: adaptive sparse/dense vs always-dense
//  - query automaton construction cost
//  - product graph construction for localEvalr
//  - partitioner cost and cut quality
//  - incremental index vs full disReach per query

#include <deque>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include "src/bes/bes.h"
#include "src/core/dis_reach.h"
#include "src/core/incremental.h"
#include "src/core/local_eval.h"
#include "src/engine/fragment_context.h"
#include "src/fragment/partitioner.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/index/reach_index.h"
#include "src/index/reach_labels.h"
#include "src/net/cluster.h"
#include "src/regex/canonical.h"
#include "src/regex/query_automaton.h"
#include "src/util/timer.h"

namespace pereach {
namespace {

// Base RNG seed, settable with --seed= (extracted before Google Benchmark
// parses its own flags) so CI smoke runs are reproducible like every other
// bench. Each site adds a distinct offset to keep streams independent.
uint64_t g_seed = 42;

Fragmentation MakeBenchFragmentation(size_t n, size_t k, uint64_t seed) {
  Rng rng(seed);
  const Graph g = ErdosRenyi(n, 3 * n, 4, &rng);
  const std::vector<SiteId> part = RandomPartitioner().Partition(g, k, &rng);
  return Fragmentation::Build(g, part, k);
}

// --- localEval: bitset propagation (the shipped implementation) ------------

void BM_LocalEvalReach_SccBitset(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Fragmentation frag = MakeBenchFragmentation(n, 4, g_seed);
  const Fragment& f = frag.fragment(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LocalEvalReach(f, 0, static_cast<NodeId>(n - 1)));
  }
  state.SetItemsProcessed(state.iterations() * f.in_nodes().size());
}
BENCHMARK(BM_LocalEvalReach_SccBitset)->Arg(2000)->Arg(10000)->Arg(40000);

// --- localEval ablation: one BFS per in-node (the textbook strategy) -------

void BM_LocalEvalReach_PerSourceBfs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Fragmentation frag = MakeBenchFragmentation(n, 4, g_seed);
  const Fragment& f = frag.fragment(0);
  const Graph& g = f.local_graph();
  for (auto _ : state) {
    size_t reached_pairs = 0;
    std::vector<uint32_t> stamp(g.NumNodes(), 0);
    uint32_t epoch = 0;
    for (NodeId src : f.in_nodes()) {
      ++epoch;
      std::deque<NodeId> queue{src};
      stamp[src] = epoch;
      while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        if (f.IsVirtual(u)) {
          ++reached_pairs;
          continue;  // virtual nodes are sinks
        }
        for (NodeId v : g.OutNeighbors(u)) {
          if (stamp[v] != epoch) {
            stamp[v] = epoch;
            queue.push_back(v);
          }
        }
      }
    }
    benchmark::DoNotOptimize(reached_pairs);
  }
  state.SetItemsProcessed(state.iterations() * f.in_nodes().size());
}
BENCHMARK(BM_LocalEvalReach_PerSourceBfs)->Arg(2000)->Arg(10000);

// --- BES solving ------------------------------------------------------------

BooleanEquationSystem MakeBenchBes(size_t n, uint64_t seed) {
  Rng rng(seed);
  BooleanEquationSystem bes;
  for (uint64_t v = 0; v < n; ++v) {
    BoolEquation eq;
    eq.var = v;
    eq.has_true = rng.Bernoulli(0.02);
    for (size_t d = rng.Uniform(6); d > 0; --d) {
      eq.deps.push_back(rng.Uniform(n));
    }
    bes.Add(std::move(eq));
  }
  return bes;
}

void BM_BesDependencyGraphSolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const BooleanEquationSystem bes = MakeBenchBes(n, g_seed + 7);
  uint64_t var = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bes.Evaluate(var));
    var = (var + 1) % n;
  }
}
BENCHMARK(BM_BesDependencyGraphSolve)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BesNaiveFixpointSolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const BooleanEquationSystem bes = MakeBenchBes(n, g_seed + 7);
  uint64_t var = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bes.EvaluateNaive(var));
    var = (var + 1) % n;
  }
}
BENCHMARK(BM_BesNaiveFixpointSolve)->Arg(1000)->Arg(10000);

// --- partial-answer encoding -------------------------------------------------

void BM_ReachAnswerEncodeAdaptive(benchmark::State& state) {
  const Fragmentation frag =
      MakeBenchFragmentation(static_cast<size_t>(state.range(0)), 4,
                             g_seed + 11);
  const ReachPartialAnswer pa = LocalEvalReach(frag.fragment(0), 0, 1);
  size_t bytes = 0;
  for (auto _ : state) {
    Encoder enc;
    pa.Serialize(&enc);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ReachAnswerEncodeAdaptive)->Arg(5000)->Arg(20000);

// --- automaton + product construction ---------------------------------------

void BM_QueryAutomatonFromRegex(benchmark::State& state) {
  Rng rng(g_seed + 3);
  const Regex r = Regex::Random(static_cast<size_t>(state.range(0)), 8, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryAutomaton::FromRegex(r));
  }
}
BENCHMARK(BM_QueryAutomatonFromRegex)->Arg(4)->Arg(16)->Arg(60);

void BM_LocalEvalRegularProduct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Fragmentation frag = MakeBenchFragmentation(n, 4, g_seed + 13);
  Rng rng(g_seed + 5);
  const QueryAutomaton a =
      QueryAutomaton::FromRegex(Regex::Random(6, 4, &rng)).value();
  const Fragment& f = frag.fragment(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LocalEvalRegular(f, a, 0, static_cast<NodeId>(n - 1)));
  }
}
BENCHMARK(BM_LocalEvalRegularProduct)->Arg(2000)->Arg(10000);

// --- automaton canonicalization + per-automaton product rows -----------------

// Signature computation cost: prune + merge fixpoint + renumber + hash,
// paid once per query at the coordinator on the indexed rpq path.
void BM_AutomatonCanonicalize(benchmark::State& state) {
  Rng rng(g_seed + 29);
  const QueryAutomaton a =
      QueryAutomaton::FromRegex(
          Regex::Random(static_cast<size_t>(state.range(0)), 8, &rng))
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Canonicalize(a));
  }
}
BENCHMARK(BM_AutomatonCanonicalize)->Arg(4)->Arg(16)->Arg(60);

// Product-row sweep, cache miss: every iteration rebuilds the fragment's
// per-automaton product condensation and grouped frontier rows from
// scratch — what a site pays on an entry's first use (or after an LRU
// eviction / update invalidation).
void BM_RpqProductRowsCacheMiss(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Fragmentation frag = MakeBenchFragmentation(n, 4, g_seed + 31);
  Rng rng(g_seed + 5);
  const CanonicalAutomaton canon = Canonicalize(
      QueryAutomaton::FromRegex(Regex::Random(6, 4, &rng)).value());
  const Fragment& f = frag.fragment(0);
  for (auto _ : state) {
    FragmentContext ctx;
    benchmark::DoNotOptimize(
        &ctx.rpq_product(f, canon.signature.key, canon.automaton));
  }
}
BENCHMARK(BM_RpqProductRowsCacheMiss)->Arg(2000)->Arg(10000);

// Cache hit: the standing structures answer the lookup without rebuilding —
// the steady-serving cost a repeated regex pays at a site.
void BM_RpqProductRowsCacheHit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Fragmentation frag = MakeBenchFragmentation(n, 4, g_seed + 31);
  Rng rng(g_seed + 5);
  const CanonicalAutomaton canon = Canonicalize(
      QueryAutomaton::FromRegex(Regex::Random(6, 4, &rng)).value());
  const Fragment& f = frag.fragment(0);
  FragmentContext ctx;
  ctx.rpq_product(f, canon.signature.key, canon.automaton);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &ctx.rpq_product(f, canon.signature.key, canon.automaton));
  }
}
BENCHMARK(BM_RpqProductRowsCacheHit)->Arg(2000)->Arg(10000);

// --- partitioners ------------------------------------------------------------

template <typename P>
void BM_Partitioner(benchmark::State& state) {
  Rng rng(g_seed + 17);
  const Graph g = PreferentialAttachment(
      static_cast<size_t>(state.range(0)), 3, 1, &rng);
  const P partitioner;
  size_t cut = 0;
  for (auto _ : state) {
    const std::vector<SiteId> part = partitioner.Partition(g, 8, &rng);
    state.PauseTiming();
    cut = Fragmentation::Build(g, part, 8).num_cross_edges();
    state.ResumeTiming();
    benchmark::DoNotOptimize(part);
  }
  state.counters["cross_edges"] = static_cast<double>(cut);
}
BENCHMARK_TEMPLATE(BM_Partitioner, RandomPartitioner)->Arg(50000);
BENCHMARK_TEMPLATE(BM_Partitioner, ChunkPartitioner)->Arg(50000);
BENCHMARK_TEMPLATE(BM_Partitioner, BfsGrowPartitioner)->Arg(50000);

// --- reachability indexes (§3 remark ablation) -------------------------------

enum class IndexKind { kBfs, kMatrix, kInterval, kTwoHop };

template <IndexKind kKind>
void BM_ReachIndexQuery(benchmark::State& state) {
  Rng rng(g_seed + 23);
  const size_t n = static_cast<size_t>(state.range(0));
  const Graph g = CommunityGraph(n, 4 * n, n / 200 + 1, 0.9, 1, &rng);
  std::unique_ptr<ReachabilityIndex> index;
  StopWatch build_watch;
  switch (kKind) {
    case IndexKind::kBfs:
      index = BuildBfsIndex(g);
      break;
    case IndexKind::kMatrix:
      index = BuildReachMatrix(g);
      break;
    case IndexKind::kInterval:
      index = BuildIntervalIndex(g, 3, &rng);
      break;
    case IndexKind::kTwoHop:
      index = BuildTwoHopIndex(g);
      break;
  }
  const double build_ms = build_watch.ElapsedMs();
  NodeId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Reaches(s, static_cast<NodeId>(n - 1 - s)));
    s = (s + 1) % static_cast<NodeId>(n);
  }
  state.counters["build_ms"] = build_ms;
  state.counters["index_bytes"] = static_cast<double>(index->ByteSize());
}
BENCHMARK_TEMPLATE(BM_ReachIndexQuery, IndexKind::kBfs)->Arg(20000);
BENCHMARK_TEMPLATE(BM_ReachIndexQuery, IndexKind::kMatrix)->Arg(20000);
BENCHMARK_TEMPLATE(BM_ReachIndexQuery, IndexKind::kInterval)->Arg(20000);
BENCHMARK_TEMPLATE(BM_ReachIndexQuery, IndexKind::kTwoHop)->Arg(20000);

// --- equation encodings (closure vs DAG, the DESIGN.md §1.4 choice) ----------

template <EquationForm kForm>
void BM_LocalEvalReachForm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Fragmentation frag = MakeBenchFragmentation(n, 4, g_seed);
  const Fragment& f = frag.fragment(0);
  size_t bytes = 0;
  for (auto _ : state) {
    const ReachPartialAnswer pa =
        LocalEvalReach(f, 0, static_cast<NodeId>(n - 1), kForm);
    Encoder enc;
    pa.Serialize(&enc);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK_TEMPLATE(BM_LocalEvalReachForm, EquationForm::kClosure)->Arg(10000);
BENCHMARK_TEMPLATE(BM_LocalEvalReachForm, EquationForm::kDag)->Arg(10000);
BENCHMARK_TEMPLATE(BM_LocalEvalReachForm, EquationForm::kAuto)->Arg(10000);

// --- coordinator reach core: 64 scalar lookups vs one bit-parallel word -----

struct SweepBenchSetup {
  ReachLabels labels;
  std::vector<std::vector<uint32_t>> src;
  std::vector<std::vector<uint32_t>> tgt;
  std::vector<WordQuestion> word;
};

/// A random condensation-shaped workload: n-node random digraph, 64 random
/// single-pair questions per word (the shape RunBoundaryReach produces).
/// Fills in place — ReachLabels is deliberately non-copyable (threading
/// contract), so the setup cannot be returned by value.
void MakeSweepSetup(size_t n, size_t shortcut_budget, uint64_t seed,
                    SweepBenchSetup* setup) {
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(3 * n);
  for (size_t e = 0; e < 3 * n; ++e) {
    const uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
    if (u != v) edges.emplace_back(u, v);
  }
  setup->labels.Build(n, edges, shortcut_budget);
  setup->src.resize(64);
  setup->tgt.resize(64);
  setup->word.resize(64);
  for (size_t li = 0; li < 64; ++li) {
    setup->src[li] = {static_cast<uint32_t>(rng.Uniform(n))};
    setup->tgt[li] = {static_cast<uint32_t>(rng.Uniform(n))};
    setup->word[li] = {setup->src[li], setup->tgt[li]};
  }
}

// 64 questions answered one scalar ReachesAny at a time — the coordinator's
// per-query cost before the batch path. Args: {nodes, shortcut_budget}.
void BM_ReachesAnyScalar64(benchmark::State& state) {
  SweepBenchSetup setup;
  MakeSweepSetup(static_cast<size_t>(state.range(0)),
                 static_cast<size_t>(state.range(1)), g_seed + 37, &setup);
  for (auto _ : state) {
    uint64_t word = 0;
    for (size_t li = 0; li < 64; ++li) {
      word |= static_cast<uint64_t>(
                  setup.labels.ReachesAny(setup.src[li], setup.tgt[li]))
              << li;
    }
    benchmark::DoNotOptimize(word);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["dfs_fallbacks"] =
      static_cast<double>(setup.labels.dfs_fallbacks());
}
BENCHMARK(BM_ReachesAnyScalar64)
    ->Args({2000, 0})
    ->Args({2000, 256})
    ->Args({20000, 0})
    ->Args({20000, 256});

// The same 64 questions answered in ONE bit-parallel word: label pass per
// lane, one shared 64-lane sweep for the rest. Args: {nodes, budget}.
void BM_BitsetSweep64(benchmark::State& state) {
  SweepBenchSetup setup;
  MakeSweepSetup(static_cast<size_t>(state.range(0)),
                 static_cast<size_t>(state.range(1)), g_seed + 37, &setup);
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.labels.ReachesAnyWord(setup.word));
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["sweep_depth"] =
      static_cast<double>(setup.labels.sweep_depth());
  state.counters["shortcut_count"] =
      static_cast<double>(setup.labels.shortcut_count());
}
BENCHMARK(BM_BitsetSweep64)
    ->Args({2000, 0})
    ->Args({2000, 256})
    ->Args({20000, 0})
    ->Args({20000, 256});

// Shortcut-depth ablation on a DEEP graph (a long chain plus sparse random
// forward edges): how much of the sweep's expansion work the budget buys
// back. sweep_depth is cumulative over the run; per-word depth is
// sweep_depth / words. Args: {chain length, shortcut_budget}.
void BM_BitsetSweepShortcutDepth(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(g_seed + 41);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(n + n / 4);
  // Chain i -> i+1 with a few skips: label-undecided long-range questions.
  for (uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  for (size_t e = 0; e < n / 4; ++e) {
    const uint32_t u = static_cast<uint32_t>(rng.Uniform(n - 1));
    edges.emplace_back(u, u + 1 + static_cast<uint32_t>(
                                      rng.Uniform(n - u - 1)));
  }
  ReachLabels labels;
  labels.Build(n, edges, static_cast<size_t>(state.range(1)));
  std::vector<std::vector<uint32_t>> src(64), tgt(64);
  std::vector<WordQuestion> word(64);
  for (size_t li = 0; li < 64; ++li) {
    const uint32_t s = static_cast<uint32_t>(rng.Uniform(n / 2));
    src[li] = {s};
    tgt[li] = {s + static_cast<uint32_t>(rng.Uniform(n / 2))};
    word[li] = {src[li], tgt[li]};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(labels.ReachesAnyWord(word));
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["sweep_depth"] = static_cast<double>(labels.sweep_depth());
  state.counters["words"] = static_cast<double>(labels.batch_words());
  state.counters["shortcut_count"] =
      static_cast<double>(labels.shortcut_count());
}
BENCHMARK(BM_BitsetSweepShortcutDepth)
    ->Args({30000, 0})
    ->Args({30000, 256})
    ->Args({30000, 4096});

// --- incremental index vs per-query partial evaluation -----------------------

void BM_DisReachFullQuery(benchmark::State& state) {
  const size_t n = 20000;
  Rng rng(g_seed + 19);
  const Graph g = ErdosRenyi(n, 3 * n, 1, &rng);
  const std::vector<SiteId> part = RandomPartitioner().Partition(g, 4, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, 4);
  Cluster cluster(&frag, NetworkModel());
  NodeId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DisReach(&cluster, {s, static_cast<NodeId>(n - 1 - s)}));
    s = (s + 1) % 1000;
  }
}
BENCHMARK(BM_DisReachFullQuery);

void BM_IncrementalIndexQuery(benchmark::State& state) {
  const size_t n = 20000;
  Rng rng(g_seed + 19);
  const Graph g = ErdosRenyi(n, 3 * n, 1, &rng);
  const std::vector<SiteId> part = RandomPartitioner().Partition(g, 4, &rng);
  IncrementalReachIndex index(g, part, 4);
  index.Reach(0, 1);  // warm the caches
  NodeId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Reach(s, static_cast<NodeId>(n - 1 - s)));
    s = (s + 1) % 1000;
  }
}
BENCHMARK(BM_IncrementalIndexQuery);

}  // namespace
}  // namespace pereach

// BENCHMARK_MAIN with the shared --seed flag peeled off first (Google
// Benchmark rejects flags it does not know).
int main(int argc, char** argv) {
  pereach::g_seed = pereach::bench::ExtractSeedFlag(&argc, argv, 42);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
