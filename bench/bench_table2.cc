// Table 2: "Efficiency and data shipment: real life data".
// Average response time and network traffic of disReach / disReachn /
// disReachm over random reachability queries on the five reachability
// datasets, card(F) = 4, random partitioning (§7 Exp-1).
//
// Flags: --scale= (default 0.02 of the paper's dataset sizes),
//        --queries= (default 10; the paper used 100), --seed=.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/dis_mp.h"
#include "src/baselines/dis_naive.h"
#include "src/core/dis_reach.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.02, 10);
  const size_t kFragments = 4;

  PrintHeader(
      "Table 2: reachability on real-life stand-ins, card(F) = 4",
      {"dataset", "algo", "time", "wall", "traffic", "visits/site", "true%"});

  for (Dataset d : Table2Datasets()) {
    Rng rng(opts.seed);
    const Graph g = MakeDataset(d, opts.scale, &rng);
    const std::vector<SiteId> part =
        ChunkPartitioner().Partition(g, kFragments, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, kFragments);
    Cluster cluster(&frag, BenchNetwork());

    const std::vector<std::pair<NodeId, NodeId>> pairs =
        MakeQueryPairs(g, opts.queries, &rng);

    struct Algo {
      const char* name;
      std::function<QueryAnswer(NodeId, NodeId)> run;
    };
    const std::vector<Algo> algos = {
        {"disReach",
         [&](NodeId s, NodeId t) { return DisReach(&cluster, {s, t}); }},
        {"disReachn",
         [&](NodeId s, NodeId t) { return DisReachNaive(&cluster, {s, t}); }},
        {"disReachm",
         [&](NodeId s, NodeId t) { return DisReachMp(&cluster, {s, t}); }},
    };
    for (const Algo& algo : algos) {
      const AveragedRun avg = Average(pairs, algo.run);
      char visits[32], rate[32];
      std::snprintf(visits, sizeof(visits), "%zu", avg.metrics.MaxVisits());
      std::snprintf(rate, sizeof(rate), "%.0f%%",
                    100.0 * avg.true_count / pairs.size());
      PrintRow({DatasetName(d), algo.name, FormatMs(avg.metrics.modeled_ms),
                FormatMs(avg.metrics.wall_ms),
                FormatMb(avg.metrics.traffic_mb()), visits, rate});
    }
  }
  std::printf(
      "\nPaper shape: disReach beats disReachn (~2-5x) and disReachm "
      "(~15x) in time;\ntraffic: disReachm < disReach << disReachn; "
      "disReach visits each site once,\ndisReachm visits sites hundreds of "
      "times.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
