// Fig. 11(d): bounded reachability (l = 10) on WikiTalk, varying card(F)
// from 2 to 20. disDist outperforms disDistn (the paper reports ~62.5% on
// average), and both get faster with more fragments.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/dis_naive.h"
#include "src/core/dis_dist.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.02, 10);
  const uint32_t kBound = 10;

  Rng rng(opts.seed);
  const Graph g = MakeDataset(Dataset::kWikiTalk, opts.scale, &rng);
  std::printf("WikiTalk stand-in at scale %.3f: %zu nodes, %zu edges\n",
              opts.scale, g.NumNodes(), g.NumEdges());
  const std::vector<std::pair<NodeId, NodeId>> pairs =
      MakeQueryPairs(g, opts.queries, &rng);

  PrintHeader("Fig 11(d): q_br (l = 10) on WikiTalk, varying card(F)",
              {"card(F)", "disDist", "disDistn", "traffic", "traffic-n"});

  for (size_t k = 2; k <= 20; k += 2) {
    const std::vector<SiteId> part = ChunkPartitioner().Partition(g, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, BenchNetwork());

    const AveragedRun pe = Average(pairs, [&](NodeId s, NodeId t) {
      return DisDist(&cluster, {s, t, kBound});
    });
    const AveragedRun naive = Average(pairs, [&](NodeId s, NodeId t) {
      return DisDistNaive(&cluster, {s, t, kBound});
    });

    char kbuf[16];
    std::snprintf(kbuf, sizeof(kbuf), "%zu", k);
    PrintRow({kbuf, FormatMs(pe.metrics.modeled_ms),
              FormatMs(naive.metrics.modeled_ms),
              FormatMb(pe.metrics.traffic_mb()),
              FormatMb(naive.metrics.traffic_mb())});
  }
  std::printf(
      "\nPaper shape: disDist beats disDistn (~62%% less time on average); "
      "both fall with card(F).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
