// Closed-loop multi-client serving benchmark: N client threads submit a
// randomized reach/dist/rpq mix to a QueryServer and wait for each answer
// before sending the next (closed loop), optionally with a writer thread
// applying edge updates through the snapshot path. Two configurations are
// compared on identical workloads:
//   per-query  — window 0, batch cap 1: every query pays its own round(s);
//   adaptive   — time/size window coalesces concurrent arrivals per class
//                into one EvaluateBatch round.
// Reported: wall throughput, modeled per-query response time (amortized
// over each query's batch window), average batch size, and rounds. The
// adaptive rows should dominate on both throughput and modeled cost — the
// amortization argument of the batch engine, now under concurrent load.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/fragment/partitioner.h"
#include "src/server/query_server.h"

namespace pereach {
namespace bench {
namespace {

struct ServerBenchFlags {
  size_t clients = 8;
  uint32_t window_us = 200;
  size_t updates = 0;
  bool mixed = false;  // --mix=all: add dist/rpq to the reach stream
  // --boundary-index: reach dispatchers answer through the coordinator's
  // boundary label, and dist dispatchers through the standing weighted
  // boundary graph, instead of solving a BES per query.
  bool boundary_index = false;
  // --sweep=on|off: coalesced reach batches through the 64-lane bit-parallel
  // word path vs one scalar coordinator lookup per query (boundary path).
  bool sweep = true;
  // --shortcut-budget=N: shortcut edges per boundary-condensation rebuild.
  size_t shortcut_budget = 64;
  // --cache=on: enable the answer cache in the headline per-query/adaptive
  // configurations too (the dedicated repeated-mix series below always
  // compares cache off vs on regardless of this flag).
  bool cache = false;
  // --cache-entries=N: answer-cache entry budget for every cached run.
  size_t cache_entries = 4096;
  // --hot=K: number of distinct queries in the repeated mix the cache
  // series replays (clients draw uniformly from this pool, so every query
  // past a pool member's first submission can hit).
  size_t hot = 16;
  // --queue-budget=N: per-class queue entry budget of the overload series
  // (clients ≫ budget drives rejections instead of queue growth).
  size_t queue_budget = 4;
  // --tenant-quota=N: per-tenant in-flight quota of the overload series
  // (0 = unlimited).
  size_t tenant_quota = 0;
  // --metrics-json=PATH: write the final run's full ServerMetrics snapshot
  // (schema in docs/OPERATIONS.md) to PATH.
  std::string metrics_json;
  // --transport=sim|shm|socket: serving transport behind the cluster
  // (DESIGN.md §13). sim answers rounds in-process (the modeled numbers are
  // the same either way); socket spawns one pereach_worker process per
  // fragment and the wall columns become real multi-process serving time.
  TransportBackend transport = TransportBackend::kSim;
  // --chaos: append a fault-injected series (seeded FaultPlan that kills
  // every worker at least once plus random kill/hang/drop/corrupt/delay
  // draws). The run must complete every batch with zero transport
  // rejections — recovery via retry/respawn/degradation is the contract.
  bool chaos = false;
};

struct ConfigResult {
  double wall_ms = 0;
  double modeled_qps = 0;     // queries / modeled makespan (max over class
                              // dispatchers of their serialized batches)
  double avg_modeled_ms = 0;  // per query, amortized over its batch
  double avg_batch = 0;
  size_t batches = 0;
  std::array<double, 3> modeled_by_class{};
  double hit_rate = 0;        // cache hits / submitted (client-observed)
  double rejection_rate = 0;  // rejected / submitted (client-observed)
  std::string metrics_json;   // full ServerMetrics snapshot at drain
  // Wall-clock serving time, measured at the clients around Submit().get():
  // host throughput plus latency percentiles over every answered query.
  // Next to the modeled columns these show what the chosen transport
  // actually costs end to end (sim: dispatch+compute; socket: that plus
  // real frame encode/decode and kernel round trips per round).
  double wall_qps = 0;
  double wall_p50_ms = 0;
  double wall_p90_ms = 0;
  double wall_p99_ms = 0;
  // Recovery books sampled from the final metrics snapshot (zeros for the
  // in-process transports): the chaos series asserts on these.
  double transport_rejected = 0;
  double transport_retries = 0;
  double transport_respawns = 0;
  double transport_degraded = 0;
};

/// Percentile over an unsorted latency sample (nearest-rank; sorts a copy).
double Percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const double position = p * static_cast<double>(sample.size() - 1);
  const size_t rank = static_cast<size_t>(position + 0.5);
  return sample[std::min(rank, sample.size() - 1)];
}

const char* TransportName(TransportBackend backend) {
  switch (backend) {
    case TransportBackend::kSim:
      return "sim";
    case TransportBackend::kShm:
      return "shm";
    case TransportBackend::kSocket:
      return "socket";
  }
  return "sim";
}

// Default workload: the paper's primary class q_r, whose warm-path compute
// (cached closure rows) is small enough that round latency — the thing
// batching amortizes — is visible. --mix=all adds bounded and regular
// queries; regular queries draw their automata from a small shared pool —
// serving workloads repeat regexes heavily, which is exactly what the
// signature-cached product boundary graphs amortize across.
Query MakeWorkloadQuery(size_t n, const std::vector<QueryAutomaton>& automata,
                        bool mixed, Rng* rng) {
  const NodeId s = static_cast<NodeId>(rng->Uniform(n));
  const NodeId t = static_cast<NodeId>(rng->Uniform(n));
  const uint64_t kind = mixed ? rng->Uniform(10) : 0;
  if (kind < 7) return Query::Reach(s, t);
  if (kind < 9) {
    return Query::Dist(s, t, static_cast<uint32_t>(1 + rng->Uniform(8)));
  }
  return Query::Rpq(s, t, automata[rng->Uniform(automata.size())]);
}

// Runs one server configuration over the closed-loop workload. With a
// non-null `hot_pool` clients draw from that fixed pool instead of fresh
// random queries (the repeated mix of the cache series); `cache` and
// `admission` harden the server per DESIGN.md §11.
ConfigResult RunConfig(const Graph& g, const std::vector<SiteId>& part,
                       size_t k_sites, const BenchOptions& opts,
                       const ServerBenchFlags& flags, const BatchPolicy& policy,
                       const std::vector<QueryAutomaton>& automata,
                       const AnswerCacheOptions& cache = {},
                       const AdmissionOptions& admission = {},
                       const std::vector<Query>* hot_pool = nullptr,
                       const FaultPlan* fault_plan = nullptr) {
  IncrementalReachIndex index(g, part, k_sites);

  ServerOptions options;
  options.policy = policy;
  options.net = BenchNetwork();
  options.cache = cache;
  options.admission = admission;
  if (fault_plan != nullptr) options.transport.fault_plan = *fault_plan;
  // Closure form: warm serving rides the cached closure rows, so per-query
  // site compute is the O(|cond|) sweep of Theorem 1, not a fresh localEval
  // — the regime the paper's guarantees (and batching) are about. Applied
  // to both configurations, so the comparison stays fair.
  options.eval.form = EquationForm::kClosure;
  options.eval.batch_sweep = flags.sweep;
  options.eval.shortcut_budget = flags.shortcut_budget;
  options.transport.backend = flags.transport;
  if (flags.boundary_index) {
    options.eval.reach_path = ReachAnswerPath::kBoundaryIndex;
    options.eval.dist_path = DistAnswerPath::kBoundaryIndex;
    options.eval.rpq_path = RpqAnswerPath::kBoundaryIndex;
  }
  QueryServer server(&index, options);

  // Warm the per-fragment caches and the standing indexes of every class so
  // both configurations start hot; the measured numbers below are deltas
  // over this snapshot, so the one-time context/row/product builds (paid
  // once per automaton per epoch in steady serving) don't pollute the
  // recorded throughput.
  const NodeId last = static_cast<NodeId>(g.NumNodes() - 1);
  server.Submit(Query::Reach(0, last)).get();
  if (flags.mixed) {
    server.Submit(Query::Dist(0, last, 8)).get();
    for (const QueryAutomaton& a : automata) {
      server.Submit(Query::Rpq(0, last, a)).get();
    }
  }
  const ServerStats warm = server.stats();

  std::vector<double> modeled_sum(flags.clients, 0.0);
  std::vector<size_t> hits(flags.clients, 0), rejected(flags.clients, 0);
  std::vector<std::vector<double>> latencies(flags.clients);
  std::vector<std::thread> threads;
  StopWatch wall;
  for (size_t c = 0; c < flags.clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(opts.seed * 1000 + c);
      const size_t n = g.NumNodes();
      latencies[c].reserve(opts.queries);
      for (size_t i = 0; i < opts.queries; ++i) {
        const Query query =
            hot_pool != nullptr
                ? (*hot_pool)[rng.Uniform(hot_pool->size())]
                : MakeWorkloadQuery(n, automata, flags.mixed, &rng);
        // Each client is its own tenant, so a quota set via --tenant-quota
        // bounds every client's in-flight share symmetrically.
        StopWatch submit_watch;
        const ServedAnswer served =
            server.Submit(query, static_cast<TenantId>(c)).get();
        if (served.rejected) {
          ++rejected[c];
          continue;
        }
        latencies[c].push_back(submit_watch.ElapsedMs());
        if (served.cache_hit) ++hits[c];
        modeled_sum[c] += served.answer.metrics.PerQueryModeledMs();
      }
    });
  }
  std::thread writer;
  if (flags.updates > 0) {
    writer = std::thread([&] {
      Rng rng(opts.seed + 99);
      const size_t n = g.NumNodes();
      for (size_t u = 0; u < flags.updates; ++u) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        server.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
                       static_cast<NodeId>(rng.Uniform(n)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = wall.ElapsedMs();
  if (writer.joinable()) writer.join();

  const ServerStats stats = server.stats();
  ConfigResult result;
  result.wall_ms = wall_ms;
  const size_t total = flags.clients * opts.queries;
  for (size_t c = 0; c < result.modeled_by_class.size(); ++c) {
    result.modeled_by_class[c] =
        stats.modeled_ms_by_class[c] - warm.modeled_ms_by_class[c];
  }
  // Throughput in the simulator's own terms: the modeled time to drain the
  // workload is bounded by the busiest class dispatcher (classes overlap,
  // batches within a class serialize). Wall q/s on a small CI box measures
  // host CPU, not the WAN the NetworkModel simulates.
  double makespan_ms = 0;
  for (double ms : result.modeled_by_class) {
    makespan_ms = std::max(makespan_ms, ms);
  }
  result.modeled_qps = static_cast<double>(total) / (makespan_ms / 1000.0);
  double modeled_total = 0;
  for (double m : modeled_sum) modeled_total += m;
  result.avg_modeled_ms = modeled_total / static_cast<double>(total);
  const size_t measured_batches = stats.batches - warm.batches;
  // Under a hot pool, most submissions hit the cache and never reach a
  // dispatcher, so the measured window can legitimately contain batches for
  // only the pool's first occurrences.
  result.avg_batch =
      measured_batches == 0
          ? 0.0
          : static_cast<double>(stats.queries - warm.queries) /
                static_cast<double>(measured_batches);
  result.batches = measured_batches;
  size_t total_hits = 0, total_rejected = 0;
  for (size_t h : hits) total_hits += h;
  for (size_t r : rejected) total_rejected += r;
  result.hit_rate =
      static_cast<double>(total_hits) / static_cast<double>(total);
  result.rejection_rate =
      static_cast<double>(total_rejected) / static_cast<double>(total);
  result.metrics_json = server.MetricsJson();
  std::vector<double> all_latencies;
  all_latencies.reserve(total);
  for (const std::vector<double>& per_client : latencies) {
    all_latencies.insert(all_latencies.end(), per_client.begin(),
                         per_client.end());
  }
  result.wall_qps = static_cast<double>(all_latencies.size()) /
                    (wall_ms / 1000.0);
  result.wall_p50_ms = Percentile(all_latencies, 0.50);
  result.wall_p90_ms = Percentile(all_latencies, 0.90);
  result.wall_p99_ms = Percentile(all_latencies, 0.99);
  const MetricsSnapshot snap = server.Metrics();
  result.transport_rejected = static_cast<double>(
      snap.counter(CounterId::kRejectedTransport));
  result.transport_retries =
      static_cast<double>(snap.counter(CounterId::kTransportRetries));
  result.transport_respawns =
      static_cast<double>(snap.counter(CounterId::kTransportRespawns));
  result.transport_degraded =
      static_cast<double>(snap.counter(CounterId::kTransportDegraded));
  return result;
}

int Run(int argc, char** argv) {
  ServerBenchFlags flags;
  const BenchOptions opts = BenchOptions::Parse(
      argc, argv, /*default_scale=*/0.02, /*default_queries=*/50,
      [&flags](const char* arg) {
        if (std::strncmp(arg, "--clients=", 10) == 0) {
          flags.clients = static_cast<size_t>(std::atoll(arg + 10));
          return true;
        }
        if (std::strncmp(arg, "--window-us=", 12) == 0) {
          flags.window_us = static_cast<uint32_t>(std::atoll(arg + 12));
          return true;
        }
        if (std::strncmp(arg, "--updates=", 10) == 0) {
          flags.updates = static_cast<size_t>(std::atoll(arg + 10));
          return true;
        }
        if (std::strcmp(arg, "--mix=all") == 0) {
          flags.mixed = true;
          return true;
        }
        if (std::strcmp(arg, "--mix=reach") == 0) {
          flags.mixed = false;
          return true;
        }
        if (std::strcmp(arg, "--boundary-index") == 0) {
          flags.boundary_index = true;
          return true;
        }
        if (std::strncmp(arg, "--sweep=", 8) == 0) {
          flags.sweep = std::strcmp(arg + 8, "off") != 0;
          return true;
        }
        if (std::strncmp(arg, "--shortcut-budget=", 18) == 0) {
          flags.shortcut_budget = static_cast<size_t>(std::atoll(arg + 18));
          return true;
        }
        if (std::strncmp(arg, "--cache=", 8) == 0) {
          flags.cache = std::strcmp(arg + 8, "off") != 0;
          return true;
        }
        if (std::strncmp(arg, "--cache-entries=", 16) == 0) {
          flags.cache_entries = static_cast<size_t>(std::atoll(arg + 16));
          return true;
        }
        if (std::strncmp(arg, "--hot=", 6) == 0) {
          flags.hot = static_cast<size_t>(std::atoll(arg + 6));
          return true;
        }
        if (std::strncmp(arg, "--queue-budget=", 15) == 0) {
          flags.queue_budget = static_cast<size_t>(std::atoll(arg + 15));
          return true;
        }
        if (std::strncmp(arg, "--tenant-quota=", 15) == 0) {
          flags.tenant_quota = static_cast<size_t>(std::atoll(arg + 15));
          return true;
        }
        if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
          flags.metrics_json = arg + 15;
          return true;
        }
        if (std::strcmp(arg, "--transport=sim") == 0) {
          flags.transport = TransportBackend::kSim;
          return true;
        }
        if (std::strcmp(arg, "--transport=shm") == 0) {
          flags.transport = TransportBackend::kShm;
          return true;
        }
        if (std::strcmp(arg, "--transport=socket") == 0) {
          flags.transport = TransportBackend::kSocket;
          return true;
        }
        if (std::strcmp(arg, "--chaos") == 0) {
          flags.chaos = true;
          return true;
        }
        return false;
      });
  const char* transport_name = TransportName(flags.transport);

  Rng rng(opts.seed);
  // The shared regex pool both configurations draw from (identical
  // workloads either way; with --boundary-index the repeats turn into
  // signature-cache hits). One label: the dataset generators label every
  // node 0, and matching automata are what make the rpq class heavy.
  std::vector<QueryAutomaton> automata;
  for (size_t i = 0; i < 4; ++i) {
    automata.push_back(MakeRandomAutomaton(3, 1, &rng));
  }
  const Graph g = MakeDataset(Dataset::kLiveJournal, opts.scale, &rng);
  const size_t k_sites = 8;
  const std::vector<SiteId> part =
      ChunkPartitioner().Partition(g, k_sites, &rng);
  std::printf(
      "QueryServer closed loop: %zu clients x %zu queries (%s), %zu sites, "
      "%zu nodes, %zu edges, %zu updates, reach path: %s, transport: %s\n",
      flags.clients, opts.queries, flags.mixed ? "mixed" : "reach-only",
      k_sites, g.NumNodes(), g.NumEdges(), flags.updates,
      flags.boundary_index ? "boundary-index" : "bes", transport_name);

  AnswerCacheOptions headline_cache;
  headline_cache.enabled = flags.cache;
  headline_cache.max_entries = flags.cache_entries;

  // Per-query baseline: no window, batches of one.
  BatchPolicy per_query;
  per_query.max_batch = 1;
  per_query.max_window_us = 0;
  per_query.adaptive = false;
  const ConfigResult single = RunConfig(g, part, k_sites, opts, flags,
                                        per_query, automata, headline_cache);

  // Adaptive coalescing window.
  BatchPolicy adaptive;
  adaptive.max_batch = 64;
  adaptive.max_window_us = flags.window_us;
  adaptive.adaptive = true;
  const ConfigResult batched = RunConfig(g, part, k_sites, opts, flags,
                                         adaptive, automata, headline_cache);

  PrintHeader(
      "Serving throughput: per-query vs adaptive batching",
      {"config", "wall", "model-q/s", "model-ms/q", "avg-batch", "batches"});
  char qps[32], batch[32], batches[32];
  std::snprintf(qps, sizeof(qps), "%.1f", single.modeled_qps);
  std::snprintf(batch, sizeof(batch), "%.2f", single.avg_batch);
  std::snprintf(batches, sizeof(batches), "%zu", single.batches);
  PrintRow({"per-query", FormatMs(single.wall_ms), qps,
            FormatMs(single.avg_modeled_ms), batch, batches});
  std::snprintf(qps, sizeof(qps), "%.1f", batched.modeled_qps);
  std::snprintf(batch, sizeof(batch), "%.2f", batched.avg_batch);
  std::snprintf(batches, sizeof(batches), "%zu", batched.batches);
  PrintRow({"adaptive", FormatMs(batched.wall_ms), qps,
            FormatMs(batched.avg_modeled_ms), batch, batches});

  PrintHeader("Modeled dispatcher occupancy by class (the makespan is the max)",
              {"config", "reach", "dist", "rpq"});
  PrintRow({"per-query", FormatMs(single.modeled_by_class[0]),
            FormatMs(single.modeled_by_class[1]),
            FormatMs(single.modeled_by_class[2])});
  PrintRow({"adaptive", FormatMs(batched.modeled_by_class[0]),
            FormatMs(batched.modeled_by_class[1]),
            FormatMs(batched.modeled_by_class[2])});

  // Wall-clock serving next to the modeled numbers: with --transport=socket
  // these are real multi-process round trips (frame encode, kernel sockets,
  // worker decode+compute), not the NetworkModel's accounting.
  PrintHeader("Wall-clock serving (transport=" + std::string(transport_name) +
                  ")",
              {"config", "wall-q/s", "p50", "p90", "p99"});
  std::snprintf(qps, sizeof(qps), "%.1f", single.wall_qps);
  PrintRow({"per-query", qps, FormatMs(single.wall_p50_ms),
            FormatMs(single.wall_p90_ms), FormatMs(single.wall_p99_ms)});
  std::snprintf(qps, sizeof(qps), "%.1f", batched.wall_qps);
  PrintRow({"adaptive", qps, FormatMs(batched.wall_p50_ms),
            FormatMs(batched.wall_p90_ms), FormatMs(batched.wall_p99_ms)});

  std::printf(
      "\nExpected shape: adaptive coalesces each class's concurrent arrivals "
      "into one round, so throughput rises and the modeled per-query cost "
      "falls toward (round cost)/(batch size); per-query pays 2 latencies "
      "per query no matter the load.\n");

  // Answer-cache series: the same adaptive configuration over a repeated
  // mix (a pool of --hot distinct queries), cache off vs on. Hits skip the
  // dispatcher entirely, so the modeled makespan shrinks to the misses'
  // evaluation and q/s rises with the hit rate.
  std::vector<Query> hot_pool;
  {
    Rng pool_rng(opts.seed + 7);
    const size_t pool_size = std::max<size_t>(flags.hot, 1);
    hot_pool.reserve(pool_size);
    for (size_t i = 0; i < pool_size; ++i) {
      hot_pool.push_back(
          MakeWorkloadQuery(g.NumNodes(), automata, flags.mixed, &pool_rng));
    }
  }
  AnswerCacheOptions cache_off, cache_on;
  cache_on.enabled = true;
  cache_on.max_entries = flags.cache_entries;
  const ConfigResult repeat_off = RunConfig(
      g, part, k_sites, opts, flags, adaptive, automata, cache_off,
      AdmissionOptions{}, &hot_pool);
  const ConfigResult repeat_on = RunConfig(
      g, part, k_sites, opts, flags, adaptive, automata, cache_on,
      AdmissionOptions{}, &hot_pool);

  PrintHeader("Answer cache on the repeated mix (hot pool of " +
                  std::to_string(hot_pool.size()) + " queries)",
              {"config", "model-q/s", "hit-rate", "batches"});
  char hit[32];
  std::snprintf(qps, sizeof(qps), "%.1f", repeat_off.modeled_qps);
  std::snprintf(hit, sizeof(hit), "%.2f", repeat_off.hit_rate);
  std::snprintf(batches, sizeof(batches), "%zu", repeat_off.batches);
  PrintRow({"cache-off", qps, hit, batches});
  std::snprintf(qps, sizeof(qps), "%.1f", repeat_on.modeled_qps);
  std::snprintf(hit, sizeof(hit), "%.2f", repeat_on.hit_rate);
  std::snprintf(batches, sizeof(batches), "%zu", repeat_on.batches);
  PrintRow({"cache-on", qps, hit, batches});

  // Overload series: queue budgets far below the offered load. The server
  // must shed the excess as rejections (bounded queues) while still
  // answering the admitted share — the backpressure contract.
  AdmissionOptions overload;
  overload.max_queue = flags.queue_budget;
  overload.tenant_quota = flags.tenant_quota;
  BatchPolicy overload_policy = adaptive;
  // A fixed (non-adaptive) window keeps admitted queries queued for the
  // full window, so the entry budget actually binds under the closed loop.
  overload_policy.adaptive = false;
  const ConfigResult overloaded =
      RunConfig(g, part, k_sites, opts, flags, overload_policy, automata,
                cache_off, overload);
  char rej[32];
  PrintHeader("Overload with queue budget " +
                  std::to_string(flags.queue_budget) +
                  " (rejections instead of queue growth)",
              {"config", "model-q/s", "reject-rate", "batches"});
  std::snprintf(qps, sizeof(qps), "%.1f", overloaded.modeled_qps);
  std::snprintf(rej, sizeof(rej), "%.2f", overloaded.rejection_rate);
  std::snprintf(batches, sizeof(batches), "%zu", overloaded.batches);
  PrintRow({"overloaded", qps, rej, batches});

  // Chaos series (--chaos): the adaptive configuration under a seeded
  // FaultPlan that SIGKILLs every worker at least once mid-serving plus
  // random {kill, hang, drop-frame, corrupt-crc, delay} draws. The
  // contract: every batch completes (zero transport rejections), recovered
  // via in-round retry, background respawn, or local degradation.
  ConfigResult chaotic;
  if (flags.chaos) {
    FaultPlan plan;
    plan.enabled = true;
    plan.seed = opts.seed;
    plan.rate = 0.05;
    plan.first_round = 2;
    plan.kill_each_site = true;
    chaotic = RunConfig(g, part, k_sites, opts, flags, adaptive, automata,
                        headline_cache, AdmissionOptions{}, nullptr, &plan);
    char rejected[32], respawns[32], retries[32], degraded[32];
    PrintHeader("Chaos series (seeded faults; every worker killed at least "
                "once)",
                {"config", "wall-q/s", "rejected", "respawns", "retries",
                 "degraded"});
    std::snprintf(qps, sizeof(qps), "%.1f", chaotic.wall_qps);
    std::snprintf(rejected, sizeof(rejected), "%.0f",
                  chaotic.transport_rejected);
    std::snprintf(respawns, sizeof(respawns), "%.0f",
                  chaotic.transport_respawns);
    std::snprintf(retries, sizeof(retries), "%.0f", chaotic.transport_retries);
    std::snprintf(degraded, sizeof(degraded), "%.0f",
                  chaotic.transport_degraded);
    PrintRow({"chaos", qps, rejected, respawns, retries, degraded});
    if (chaotic.transport_rejected > 0) {
      std::fprintf(stderr,
                   "chaos: %d batch(es) rejected with kTransportError — "
                   "recovery failed\n",
                   static_cast<int>(chaotic.transport_rejected));
      return 1;
    }
  }

  if (!flags.metrics_json.empty()) {
    std::FILE* f = std::fopen(flags.metrics_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --metrics-json=%s\n",
                   flags.metrics_json.c_str());
      return 1;
    }
    std::fputs(overloaded.metrics_json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote metrics snapshot (overload run) to %s\n",
                flags.metrics_json.c_str());
  }

  std::string bench_name = "bench_server";
  if (flags.boundary_index) bench_name += "+boundary-index";
  if (flags.transport != TransportBackend::kSim) {
    bench_name += std::string("+") + transport_name;
  }
  WriteBenchJson(opts.json_path, bench_name,
                 {{"clients", static_cast<double>(flags.clients)},
                  {"queries_per_client", static_cast<double>(opts.queries)},
                  {"seed", static_cast<double>(opts.seed)},
                  {"boundary_index", flags.boundary_index ? 1.0 : 0.0},
                  {"per_query_modeled_qps", single.modeled_qps},
                  {"per_query_modeled_ms", single.avg_modeled_ms},
                  {"adaptive_modeled_qps", batched.modeled_qps},
                  {"adaptive_modeled_ms", batched.avg_modeled_ms},
                  {"adaptive_avg_batch", batched.avg_batch},
                  {"batch_sweep", flags.sweep ? 1.0 : 0.0},
                  {"shortcut_budget",
                   static_cast<double>(flags.shortcut_budget)},
                  // Per-class dispatcher occupancy (dist/rpq are 0 under
                  // --mix=reach): the reach, dist and rpq series of the
                  // perf artifact, index off/on. The reach series is where
                  // the coalesced 64-lane words land under --boundary-index.
                  {"per_query_reach_modeled_ms", single.modeled_by_class[0]},
                  {"adaptive_reach_modeled_ms", batched.modeled_by_class[0]},
                  {"per_query_dist_modeled_ms", single.modeled_by_class[1]},
                  {"adaptive_dist_modeled_ms", batched.modeled_by_class[1]},
                  {"per_query_rpq_modeled_ms", single.modeled_by_class[2]},
                  {"adaptive_rpq_modeled_ms", batched.modeled_by_class[2]},
                  // Serving-hardening series: the repeated-mix cache
                  // comparison and the bounded-queue overload run.
                  {"hot_pool", static_cast<double>(hot_pool.size())},
                  {"cache_off_modeled_qps", repeat_off.modeled_qps},
                  {"cache_on_modeled_qps", repeat_on.modeled_qps},
                  {"cache_hit_rate", repeat_on.hit_rate},
                  {"queue_budget", static_cast<double>(flags.queue_budget)},
                  {"tenant_quota", static_cast<double>(flags.tenant_quota)},
                  {"overload_rejection_rate", overloaded.rejection_rate},
                  // Wall-clock series (adaptive run) for the chosen
                  // transport: real q/s and client-observed latency
                  // percentiles around Submit().get().
                  {"transport",
                   static_cast<double>(static_cast<int>(flags.transport))},
                  {"per_query_wall_qps", single.wall_qps},
                  {"wall_qps", batched.wall_qps},
                  {"wall_p50_ms", batched.wall_p50_ms},
                  {"wall_p90_ms", batched.wall_p90_ms},
                  {"wall_p99_ms", batched.wall_p99_ms},
                  // Chaos series (all zero when --chaos is off): recovery
                  // counters and the zero-rejection contract.
                  {"chaos", flags.chaos ? 1.0 : 0.0},
                  {"chaos_wall_qps", chaotic.wall_qps},
                  {"chaos_transport_rejected", chaotic.transport_rejected},
                  {"chaos_transport_retries", chaotic.transport_retries},
                  {"chaos_transport_respawns", chaotic.transport_respawns},
                  {"chaos_transport_degraded", chaotic.transport_degraded}});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
