#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "src/baselines/dis_naive.h"
#include "src/baselines/dis_rpq_suciu.h"
#include "src/core/dis_rpq.h"
#include "src/util/logging.h"

namespace pereach {
namespace bench {

BenchOptions BenchOptions::Parse(int argc, char** argv, double default_scale,
                                 size_t default_queries) {
  return Parse(argc, argv, default_scale, default_queries,
               [](const char*) { return false; });
}

BenchOptions BenchOptions::Parse(
    int argc, char** argv, double default_scale, size_t default_queries,
    const std::function<bool(const char*)>& extra) {
  BenchOptions opts;
  opts.scale = default_scale;
  opts.queries = default_queries;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opts.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      opts.queries = static_cast<size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      opts.json_path = arg + 7;
    } else if (!extra(arg)) {
      std::fprintf(stderr,
                   "unknown flag %s (shared flags: --scale= --queries= "
                   "--seed= --json=)\n",
                   arg);
      std::exit(2);
    }
  }
  PEREACH_CHECK_GT(opts.scale, 0.0);
  PEREACH_CHECK_GE(opts.queries, 1u);
  return opts;
}

uint64_t ExtractSeedFlag(int* argc, char** argv, uint64_t default_seed) {
  uint64_t seed = default_seed;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return seed;
}

void WriteBenchJson(
    const std::string& path, const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  PEREACH_CHECK(f != nullptr && "cannot open --json output path");
  std::fprintf(f, "{\"bench\": \"%s\", \"metrics\": {", name.c_str());
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %.6g", i == 0 ? "" : ", ",
                 metrics[i].first.c_str(), metrics[i].second);
  }
  std::fprintf(f, "}}\n");
  std::fclose(f);
}

NetworkModel BenchNetwork() {
  NetworkModel net;
  // Geo-distributed data centers (the paper's motivating deployment, §1):
  // a few ms one-way latency and WAN-grade shared ingress at the
  // coordinator. Documented in EXPERIMENTS.md.
  net.latency_ms = 5.0;
  net.bandwidth_mb_per_s = 25.0;
  return net;
}

std::vector<std::pair<NodeId, NodeId>> MakeQueryPairs(const Graph& g,
                                                      size_t count, Rng* rng) {
  const size_t n = g.NumNodes();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    NodeId s = static_cast<NodeId>(rng->Uniform(n));
    if (i % 2 == 0) {
      // Forward random walk: t likely reachable from s.
      NodeId t = s;
      const size_t steps = 2 + rng->Uniform(24);
      for (size_t step = 0; step < steps; ++step) {
        auto out = g.OutNeighbors(t);
        if (out.empty()) break;
        t = out[rng->Uniform(out.size())];
      }
      if (t == s) t = static_cast<NodeId>(rng->Uniform(n));
      pairs.emplace_back(s, t);
    } else {
      pairs.emplace_back(s, static_cast<NodeId>(rng->Uniform(n)));
    }
  }
  return pairs;
}

QueryAutomaton MakeRandomAutomaton(size_t num_symbols, size_t num_labels,
                                   Rng* rng) {
  return QueryAutomaton::FromRegex(
             Regex::Random(num_symbols, num_labels, rng))
      .value();
}

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("----------------");
  std::printf("\n");
  std::fflush(stdout);
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) std::printf("%-16s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatMs(double ms) {
  char buf[64];
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  }
  return buf;
}

std::string FormatMb(double mb) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fMB", mb);
  return buf;
}

AveragedRun Average(
    const std::vector<std::pair<NodeId, NodeId>>& pairs,
    const std::function<QueryAnswer(NodeId, NodeId)>& run_query) {
  AveragedRun avg;
  for (const auto& [s, t] : pairs) {
    const QueryAnswer answer = run_query(s, t);
    avg.metrics.Accumulate(answer.metrics);
    if (answer.reachable) ++avg.true_count;
  }
  avg.metrics.ScaleDown(pairs.size());
  return avg;
}

RegularWorkload MakeRegularWorkload(const Graph& g, size_t count,
                                    size_t num_symbols, size_t num_labels,
                                    Rng* rng) {
  RegularWorkload w;
  w.pairs = MakeQueryPairs(g, count, rng);
  w.automata.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    w.automata.push_back(MakeRandomAutomaton(num_symbols, num_labels, rng));
  }
  return w;
}

RegularComparison RunRegularComparison(Cluster* cluster,
                                       const RegularWorkload& workload) {
  RegularComparison cmp;
  for (size_t i = 0; i < workload.pairs.size(); ++i) {
    const auto [s, t] = workload.pairs[i];
    const QueryAutomaton& a = workload.automata[i];
    cmp.rpq.Accumulate(DisRpqAutomaton(cluster, s, t, a).metrics);
    cmp.naive.Accumulate(DisRpqNaive(cluster, s, t, a).metrics);
    cmp.suciu.Accumulate(DisRpqSuciu(cluster, s, t, a).metrics);
  }
  cmp.rpq.ScaleDown(workload.pairs.size());
  cmp.naive.ScaleDown(workload.pairs.size());
  cmp.suciu.ScaleDown(workload.pairs.size());
  return cmp;
}

}  // namespace bench
}  // namespace pereach
