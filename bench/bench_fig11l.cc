// Fig. 11(l): MRdRPQ on a fixed synthetic labeled graph, varying the number
// of mappers from 5 to 30 for the four query classes Q1..Q4. More mappers
// shrink the per-mapper fragment, cutting the ECC critical path (the paper
// reports Q1 halving from 5 to 30 mappers).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/mapreduce/mr_rpq.h"
#include "src/util/thread_pool.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.05, 4);
  const size_t kLabels = 8;
  const std::vector<std::pair<const char*, size_t>> query_classes = {
      {"Q1", 2}, {"Q2", 4}, {"Q3", 8}, {"Q4", 10}};

  Rng rng(opts.seed);
  const size_t n = static_cast<size_t>(700'000 * opts.scale);
  const Graph g = ErdosRenyi(n, 2 * n, kLabels, &rng);
  std::printf("synthetic at scale %.3f: %zu nodes, %zu edges\n", opts.scale,
              g.NumNodes(), g.NumEdges());

  ThreadPool pool(0 /* hardware */);
  const NetworkModel net = BenchNetwork();

  // One workload per query class, reused across mapper counts.
  std::vector<RegularWorkload> workloads;
  for (const auto& [name, symbols] : query_classes) {
    workloads.push_back(
        MakeRegularWorkload(g, opts.queries, symbols, kLabels, &rng));
  }

  PrintHeader("Fig 11(l): MRdRPQ, varying number of mappers",
              {"mappers", "Q1", "Q2", "Q3", "Q4"});

  for (size_t mappers = 5; mappers <= 30; mappers += 5) {
    std::vector<std::string> cells;
    char mbuf[16];
    std::snprintf(mbuf, sizeof(mbuf), "%zu", mappers);
    cells.push_back(mbuf);
    for (size_t qc = 0; qc < query_classes.size(); ++qc) {
      const RegularWorkload& workload = workloads[qc];
      RunMetrics metrics;
      for (size_t i = 0; i < workload.pairs.size(); ++i) {
        const auto [s, t] = workload.pairs[i];
        metrics.Accumulate(MapReduceRpqOnGraph(g, s, t, workload.automata[i],
                                               mappers, net, &pool)
                               .answer.metrics);
      }
      metrics.ScaleDown(workload.pairs.size());
      cells.push_back(FormatMs(metrics.modeled_ms));
    }
    PrintRow(cells);
  }
  std::printf(
      "\nPaper shape: time falls as mappers increase (ECC critical path "
      "shrinks).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
