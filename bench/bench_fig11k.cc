// Fig. 11(k): MRdRPQ with 10 mappers on synthetic labeled graphs, varying
// the graph size (the paper sweeps 350K..3.15M with 4 query complexities
// Q1 = (4,6,8), Q2 = (6,8,8), Q3 = (10,12,8), Q4 = (12,14,8)).
// Larger graphs and more complex queries both increase job time.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/mapreduce/mr_rpq.h"
#include "src/util/thread_pool.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.05, 4);
  const size_t kMappers = 10;
  const size_t kLabels = 8;
  // Symbol counts realizing Q1..Q4's |Vq| = 4, 6, 10, 12 (states = sym + 2).
  const std::vector<std::pair<const char*, size_t>> query_classes = {
      {"Q1", 2}, {"Q2", 4}, {"Q3", 8}, {"Q4", 10}};

  ThreadPool pool(0 /* hardware */);
  const NetworkModel net = BenchNetwork();

  PrintHeader("Fig 11(k): MRdRPQ, 10 mappers, varying graph size",
              {"size", "Q1", "Q2", "Q3", "Q4"});

  for (size_t size = 350'000; size <= 3'150'000; size += 400'000) {
    const size_t target = static_cast<size_t>(size * opts.scale);
    const size_t n = std::max<size_t>(64, target / 3);
    Rng rng(opts.seed + size);
    const Graph g = ErdosRenyi(n, 2 * n, kLabels, &rng);

    std::vector<std::string> cells;
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%zuK(x%.2f)", size / 1000,
                  opts.scale);
    cells.push_back(size_buf);

    for (const auto& [name, symbols] : query_classes) {
      const RegularWorkload workload =
          MakeRegularWorkload(g, opts.queries, symbols, kLabels, &rng);
      RunMetrics metrics;
      for (size_t i = 0; i < workload.pairs.size(); ++i) {
        const auto [s, t] = workload.pairs[i];
        metrics.Accumulate(MapReduceRpqOnGraph(g, s, t, workload.automata[i],
                                               kMappers, net, &pool)
                               .answer.metrics);
      }
      metrics.ScaleDown(workload.pairs.size());
      cells.push_back(FormatMs(metrics.modeled_ms));
    }
    PrintRow(cells);
  }
  std::printf(
      "\nPaper shape: time grows with graph size and query complexity "
      "(Q1 < Q2 < Q3 < Q4).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
