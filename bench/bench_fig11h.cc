// Fig. 11(h): regular reachability on synthetic labeled graphs, card(F) =
// 10, varying size(F) from 35K to 315K (nodes + edges per fragment),
// queries (|Vq| = 8, |Eq| = 16, |Lq| = 8). The paper highlights disRPQ
// answering in 16s at 1.5M nodes / 2.1M edges.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.1, 5);
  const size_t kFragments = 10;
  const size_t kLabels = 8;

  PrintHeader("Fig 11(h): q_rr on synthetic, card(F) = 10, varying size(F)",
              {"size(F)", "disRPQ", "disRPQd", "disRPQn"});

  for (size_t size_f = 35'000; size_f <= 315'000; size_f += 40'000) {
    const size_t target = static_cast<size_t>(
        static_cast<double>(size_f) * kFragments * opts.scale);
    const size_t n = std::max<size_t>(64, target / 3);  // |E| ≈ 2|V|
    Rng rng(opts.seed + size_f);
    const Graph g = ErdosRenyi(n, 2 * n, kLabels, &rng);
    const std::vector<SiteId> part =
        RandomPartitioner().Partition(g, kFragments, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, kFragments);
    Cluster cluster(&frag, BenchNetwork());

    const RegularWorkload workload =
        MakeRegularWorkload(g, opts.queries, 6, kLabels, &rng);
    const RegularComparison cmp = RunRegularComparison(&cluster, workload);

    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%zuK(x%.2f)", size_f / 1000,
                  opts.scale);
    PrintRow({size_buf, FormatMs(cmp.rpq.modeled_ms),
              FormatMs(cmp.suciu.modeled_ms), FormatMs(cmp.naive.modeled_ms)});
  }
  std::printf(
      "\nPaper shape: all grow with size(F); disRPQ stays lowest and scales "
      "smoothest.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
