// Fig. 11(g): impact of query complexity on Youtube — automata from
// (|Vq| = 4, |Eq| = 8) up to (18, 36) with |Lq| = 8. All algorithms take
// longer on larger queries; disRPQ and disRPQd are less sensitive than
// disRPQn (whose centralized product search dominates).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.05, 5);

  Rng rng(opts.seed);
  const Graph g = MakeDataset(Dataset::kYoutube, opts.scale, &rng);
  std::printf("Youtube stand-in at scale %.3f: %zu nodes, %zu edges\n",
              opts.scale, g.NumNodes(), g.NumEdges());
  const size_t k = 12;
  const std::vector<SiteId> part = ChunkPartitioner().Partition(g, k, &rng);
  const Fragmentation frag = Fragmentation::Build(g, part, k);
  Cluster cluster(&frag, BenchNetwork());

  PrintHeader("Fig 11(g): q_rr on Youtube, varying query complexity",
              {"(|Vq|,|Eq|)", "disRPQ", "disRPQd", "disRPQn"});

  for (size_t vq = 4; vq <= 18; vq += 2) {
    // |Vq| states = (vq - 2) symbol positions + u_s + u_t.
    const RegularWorkload workload =
        MakeRegularWorkload(g, opts.queries, vq - 2, /*num_labels=*/8, &rng);
    const RegularComparison cmp = RunRegularComparison(&cluster, workload);

    size_t eq_total = 0;
    for (const QueryAutomaton& a : workload.automata) {
      eq_total += a.num_transitions();
    }
    char label[32];
    std::snprintf(label, sizeof(label), "(%zu,%zu)", vq,
                  eq_total / workload.automata.size());
    PrintRow({label, FormatMs(cmp.rpq.modeled_ms),
              FormatMs(cmp.suciu.modeled_ms), FormatMs(cmp.naive.modeled_ms)});
  }
  std::printf(
      "\nPaper shape: all grow with |Vq|; disRPQ/disRPQd less sensitive "
      "than disRPQn.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
