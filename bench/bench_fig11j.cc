// Fig. 11(j): regular reachability on one large synthetic labeled graph
// (paper: 36M nodes / 360M edges, |L| = 50), varying card(F) from 10 to 20.
// Both disRPQ and disRPQd scale down with card(F); disRPQ consistently wins.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/dis_rpq_suciu.h"
#include "src/core/dis_rpq.h"
#include "src/fragment/partitioner.h"
#include "src/net/cluster.h"

namespace pereach {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::Parse(argc, argv, 0.003, 4);
  const size_t kLabels = 50;

  Rng rng(opts.seed);
  const size_t n = static_cast<size_t>(36'000'000 * opts.scale);
  const size_t m = static_cast<size_t>(360'000'000 * opts.scale);
  const Graph g = ErdosRenyi(n, m, kLabels, &rng);
  std::printf("large synthetic at scale %.4f: %zu nodes, %zu edges\n",
              opts.scale, g.NumNodes(), g.NumEdges());

  const RegularWorkload workload =
      MakeRegularWorkload(g, opts.queries, 6, kLabels, &rng);

  PrintHeader("Fig 11(j): q_rr on large synthetic, varying card(F)",
              {"card(F)", "disRPQ", "disRPQd"});

  for (size_t k = 10; k <= 20; k += 2) {
    const std::vector<SiteId> part = RandomPartitioner().Partition(g, k, &rng);
    const Fragmentation frag = Fragmentation::Build(g, part, k);
    Cluster cluster(&frag, BenchNetwork());

    RunMetrics rpq, suciu;
    for (size_t i = 0; i < workload.pairs.size(); ++i) {
      const auto [s, t] = workload.pairs[i];
      rpq.Accumulate(
          DisRpqAutomaton(&cluster, s, t, workload.automata[i]).metrics);
      suciu.Accumulate(
          DisRpqSuciu(&cluster, s, t, workload.automata[i]).metrics);
    }
    rpq.ScaleDown(workload.pairs.size());
    suciu.ScaleDown(workload.pairs.size());

    char kbuf[16];
    std::snprintf(kbuf, sizeof(kbuf), "%zu", k);
    PrintRow({kbuf, FormatMs(rpq.modeled_ms), FormatMs(suciu.modeled_ms)});
  }
  std::printf(
      "\nPaper shape: both fall with card(F); disRPQ consistently "
      "outperforms disRPQd.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pereach

int main(int argc, char** argv) { return pereach::bench::Run(argc, argv); }
