// MRdRPQ demo (paper §6): evaluating a regular reachability query as a
// single MapReduce job, and how mapper count affects the job profile.

#include <cstdio>

#include "src/graph/generators.h"
#include "src/mapreduce/mr_rpq.h"
#include "src/regex/regex.h"
#include "src/util/thread_pool.h"

using namespace pereach;  // NOLINT — examples favour brevity

int main() {
  Rng rng(5);

  // A Youtube-like recommendation graph with 12 category labels.
  Graph graph = MakeDataset(Dataset::kYoutube, /*scale=*/0.02, &rng);
  std::printf("graph: %zu nodes, %zu edges\n", graph.NumNodes(),
              graph.NumEdges());

  LabelDictionary categories;
  for (int c = 0; c < 12; ++c) categories.Intern("cat" + std::to_string(c));
  Result<Regex> r = Regex::Parse("cat0* (cat1 | cat2)*", categories);
  if (!r.ok()) {
    std::printf("regex error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  const QueryAutomaton automaton = QueryAutomaton::FromRegex(r.value()).value();
  std::printf("query automaton: %zu states, %zu transitions\n\n",
              automaton.num_states(), automaton.num_transitions());

  const NodeId s = 42;
  const NodeId t = static_cast<NodeId>(graph.NumNodes() - 1);

  ThreadPool pool(8);
  NetworkModel net;  // 5 ms latency, 100 MB/s

  std::printf("%-8s %-8s %-12s %-12s %-12s %-12s\n", "mappers", "answer",
              "map(ms)", "reduce(ms)", "ECC(MB)", "traffic(MB)");
  for (size_t mappers : {2, 5, 10, 20}) {
    const MapReduceRpqResult res =
        MapReduceRpqOnGraph(graph, s, t, automaton, mappers, net, &pool);
    std::printf("%-8zu %-8s %-12.2f %-12.2f %-12.3f %-12.3f\n", mappers,
                res.answer.reachable ? "true" : "false",
                res.stats.map_wall_ms, res.stats.reduce_wall_ms,
                static_cast<double>(res.stats.EccBytes()) / 1e6,
                static_cast<double>(res.stats.TotalTrafficBytes()) / 1e6);
  }

  std::printf(
      "\nMore mappers shrink the per-mapper fragment (max mapper input falls),"
      "\nso the ECC critical path of [1] drops — the Fig. 11(l) effect.\n");
  return 0;
}
