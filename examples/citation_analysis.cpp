// Citation analysis: regular reachability on a distributed citation DAG.
//
// Scenario: a bibliometrics service shards a citation graph by paper id
// across servers. An analyst asks lineage questions like "does paper A
// transitively build on paper B *through venue-X papers only*?" — a regular
// reachability query where node labels are publication venues.
//
// This mirrors the paper's Citation dataset experiments (§7) at toy scale.

#include <cstdio>
#include <string>

#include "src/core/dist_graph.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"

using namespace pereach;  // NOLINT — examples favour brevity

int main() {
  Rng rng(2026);

  // A layered citation DAG: 40 "years" of 250 papers, each citing 3 earlier
  // papers, labeled with one of 8 venues.
  const size_t kVenues = 8;
  Graph citations = LayeredCitationDag(/*layers=*/40, /*width=*/250,
                                       /*cites=*/3, kVenues, &rng);
  std::printf("citation graph: %zu papers, %zu citations, %zu venues\n",
              citations.NumNodes(), citations.NumEdges(), kVenues);

  LabelDictionary venues;
  for (size_t v = 0; v < kVenues; ++v) {
    venues.Intern("VENUE" + std::to_string(v));
  }

  // Shard over 6 servers by hash (the service's actual layout is irrelevant
  // to correctness — Theorems 1-3 hold for arbitrary fragmentation).
  const size_t kServers = 6;
  const std::vector<SiteId> shard =
      RandomPartitioner().Partition(citations, kServers, &rng);
  DistributedGraph dg(std::move(citations), shard, kServers);
  std::printf("sharded over %zu servers, %zu cross-shard citations\n\n",
              kServers, dg.fragmentation().num_cross_edges());

  // Recent papers cite old ones; pick a recent paper and find a first-layer
  // ancestor of it (guaranteed to exist: every citation chain bottoms out).
  const NodeId recent = static_cast<NodeId>(dg.graph().NumNodes() - 1);
  NodeId ancient = 0;
  for (NodeId candidate = 0; candidate < 250; ++candidate) {
    if (dg.Reach(recent, candidate).reachable) {
      ancient = candidate;
      break;
    }
  }

  // Q1: plain lineage — does `recent` transitively cite `ancient`?
  const QueryAnswer lineage = dg.Reach(recent, ancient);
  std::printf("Q1 lineage %u ~> %u: %s   [%s]\n", recent, ancient,
              lineage.reachable ? "yes" : "no",
              lineage.metrics.Summary().c_str());

  // Q2: lineage within 6 citation hops.
  const QueryAnswer close = dg.BoundedReach(recent, ancient, 6);
  if (close.reachable) {
    std::printf("Q2 within 6 hops: yes (distance %llu)\n",
                static_cast<unsigned long long>(close.distance));
  } else {
    std::printf("Q2 within 6 hops: no (shortest chain is longer)\n");
  }

  // Q3: lineage through VENUE0-only intermediaries.
  Result<Regex> through_v0 = Regex::Parse("VENUE0*", venues);
  const QueryAnswer pure = dg.RegularReach(recent, ancient, through_v0.value());
  std::printf("Q3 through VENUE0-only papers: %s   [%s]\n",
              pure.reachable ? "yes" : "no", pure.metrics.Summary().c_str());

  // Q4: lineage alternating the two flagship venues.
  Result<Regex> alternating =
      Regex::Parse("(VENUE0 VENUE1)* | (VENUE1 VENUE0)*", venues);
  const QueryAnswer alt = dg.RegularReach(recent, ancient, alternating.value());
  std::printf("Q4 alternating VENUE0/VENUE1 chain: %s\n",
              alt.reachable ? "yes" : "no");

  // Q5: sweep — how many of the 20 oldest papers does `recent` build on
  //     through any route vs through VENUE0-only routes?
  size_t any_route = 0, pure_route = 0;
  for (NodeId old_paper = 0; old_paper < 20; ++old_paper) {
    if (dg.Reach(recent, old_paper).reachable) ++any_route;
    if (dg.RegularReach(recent, old_paper, through_v0.value()).reachable) {
      ++pure_route;
    }
  }
  std::printf(
      "Q5 of the 20 oldest papers, %zu are transitive ancestors; %zu via "
      "VENUE0-only chains\n",
      any_route, pure_route);

  std::printf(
      "\nAll queries shipped equations only: total cross-server traffic per "
      "query\nstayed proportional to the shard boundary, not the graph.\n");
  return 0;
}
