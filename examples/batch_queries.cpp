// Batched query serving with the unified QueryEngine: a recommendation
// service receives bursts of mixed queries (plain, bounded, and regular
// reachability) and answers each burst in ONE communication round, reusing
// the per-fragment precompute cache across bursts.
//
//   $ ./batch_queries
//
// Compare with examples/quickstart.cpp, which runs the same query classes
// one at a time through the single-query wrappers.

#include <cstdio>

#include "src/engine/baseline_engines.h"
#include "src/engine/partial_eval_engine.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "src/regex/regex.h"

using namespace pereach;  // NOLINT — examples favour brevity

int main() {
  Rng rng(/*seed=*/11);
  Graph graph = ForestFire(/*n=*/30000, /*p_forward=*/0.30, /*num_labels=*/4,
                           &rng);
  const size_t kSites = 6;
  const std::vector<SiteId> partition =
      BfsGrowPartitioner().Partition(graph, kSites, &rng);
  const Fragmentation frag = Fragmentation::Build(graph, partition, kSites);
  Cluster cluster(&frag, NetworkModel());
  std::printf("graph: %zu nodes, %zu edges over %zu sites (|Vf| = %zu)\n",
              graph.NumNodes(), graph.NumEdges(), frag.num_fragments(),
              frag.num_boundary_nodes());

  // One engine per service; its FragmentContext cache stays warm across
  // bursts and is invalidated per fragment on edge updates (see
  // IncrementalReachIndex::SetUpdateListener).
  PartialEvalEngine engine(&cluster);

  // A burst of 32 mixed queries, as a frontend would collect per tick.
  // Half the targets are sampled by short forward walks so a realistic
  // fraction of answers is positive.
  const auto forward_walk = [&](NodeId from) {
    NodeId v = from;
    for (int hop = 0; hop < 8; ++hop) {
      const auto out = graph.OutNeighbors(v);
      if (out.empty()) break;
      v = out[rng.Uniform(out.size())];
    }
    return v;
  };
  std::vector<Query> burst;
  const QueryAutomaton chain =
      QueryAutomaton::FromRegex(Regex::Random(/*num_symbols=*/3,
                                              /*num_labels=*/4, &rng)).value();
  for (int i = 0; i < 32; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(graph.NumNodes()));
    const NodeId t = (i % 2 == 0)
                         ? forward_walk(s)
                         : static_cast<NodeId>(rng.Uniform(graph.NumNodes()));
    switch (i % 3) {
      case 0: burst.push_back(Query::Reach(s, t)); break;
      case 1: burst.push_back(Query::Dist(s, t, /*bound=*/6)); break;
      default: burst.push_back(Query::Rpq(s, t, chain)); break;
    }
  }

  const BatchAnswer result = engine.EvaluateBatch(burst);
  size_t reachable = 0;
  for (const QueryAnswer& a : result.answers) reachable += a.reachable;
  std::printf("burst of %zu queries: %zu reachable\n", burst.size(),
              reachable);
  std::printf("batch cost:     %s\n", result.metrics.Summary().c_str());
  std::printf("amortized/query: %.2f ms modeled\n",
              result.metrics.PerQueryModeledMs());

  // The same burst, one query at a time: every query pays its own round.
  RunMetrics sequential;
  for (const Query& q : burst) {
    sequential.Accumulate(engine.Evaluate(q).metrics);
  }
  std::printf("sequential:     %s\n", sequential.Summary().c_str());

  // Ship-all baseline behind the same interface, for contrast.
  NaiveShipAllEngine naive(&cluster);
  const BatchAnswer naive_result = naive.EvaluateBatch(burst);
  std::printf("ship-all batch: %s\n", naive_result.metrics.Summary().c_str());
  return 0;
}
