// Parcel routing: bounded reachability across regional logistics networks.
//
// Scenario: a delivery company operates regional hub networks (one per
// operating company, stored at that company's site). A parcel can be
// promised "K-hop delivery" iff the destination is within K hops of the
// origin in the union network. The union is never materialized — q_br runs
// by partial evaluation over the regions, matching §4 of the paper.

#include <cstdio>
#include <vector>

#include "src/core/dist_graph.h"
#include "src/graph/graph.h"
#include "src/util/random.h"

using namespace pereach;  // NOLINT — examples favour brevity

int main() {
  Rng rng(99);

  // Four regions of 12x12 hub grids, connected by a few inter-region links.
  const size_t kRegions = 4;
  const size_t kSide = 12;
  const size_t kHubsPerRegion = kSide * kSide;

  GraphBuilder builder;
  std::vector<SiteId> region_of;
  for (SiteId r = 0; r < kRegions; ++r) {
    const NodeId base = builder.AddNodes(kHubsPerRegion);
    for (size_t i = 0; i < kHubsPerRegion; ++i) region_of.push_back(r);
    // Bidirectional grid roads within the region.
    const auto hub = [&](size_t row, size_t col) {
      return static_cast<NodeId>(base + row * kSide + col);
    };
    for (size_t row = 0; row < kSide; ++row) {
      for (size_t col = 0; col < kSide; ++col) {
        if (col + 1 < kSide) {
          builder.AddEdge(hub(row, col), hub(row, col + 1));
          builder.AddEdge(hub(row, col + 1), hub(row, col));
        }
        if (row + 1 < kSide) {
          builder.AddEdge(hub(row, col), hub(row + 1, col));
          builder.AddEdge(hub(row + 1, col), hub(row, col));
        }
      }
    }
  }
  // Sparse inter-region air links (one-way, like scheduled freight flights).
  const size_t kAirLinks = 10;
  for (size_t i = 0; i < kAirLinks; ++i) {
    const NodeId from =
        static_cast<NodeId>(rng.Uniform(kRegions * kHubsPerRegion));
    const NodeId to =
        static_cast<NodeId>(rng.Uniform(kRegions * kHubsPerRegion));
    if (region_of[from] != region_of[to]) builder.AddEdge(from, to);
  }

  DistributedGraph dg(std::move(builder).Build(), region_of, kRegions);
  std::printf("logistics network: %zu hubs in %zu regions, %zu air links "
              "cross regions\n\n",
              dg.graph().NumNodes(), kRegions,
              dg.fragmentation().num_cross_edges());

  // Promise check: origin in region 0, destination in region 3.
  const NodeId origin = 0;
  const NodeId destination =
      static_cast<NodeId>(3 * kHubsPerRegion + kHubsPerRegion - 1);

  std::printf("Can we deliver hub %u -> hub %u ...\n", origin, destination);
  for (uint32_t promise : {10, 20, 30, 40, 60}) {
    const QueryAnswer a = dg.BoundedReach(origin, destination, promise);
    std::printf("  within %2u hops? %-5s", promise,
                a.reachable ? "yes" : "no");
    if (a.reachable) {
      std::printf(" (actual shortest chain: %llu hops)",
                  static_cast<unsigned long long>(a.distance));
    }
    std::printf("   [visits/site = %zu, traffic = %.3f MB]\n",
                a.metrics.MaxVisits(), a.metrics.traffic_mb());
  }

  // Fleet planning sweep: how many of 25 random destination hubs are
  // reachable within 25 hops of the central depot?
  size_t covered = 0;
  for (int i = 0; i < 25; ++i) {
    const NodeId dest =
        static_cast<NodeId>(rng.Uniform(dg.graph().NumNodes()));
    if (dg.BoundedReach(origin, dest, 25).reachable) ++covered;
  }
  std::printf("\n25-hop coverage from the depot: %zu/25 sampled hubs\n",
              covered);

  std::printf(
      "\nEach promise check visited every regional site exactly once and\n"
      "shipped min-plus equations over boundary hubs only (Theorem 2).\n");
  return 0;
}
