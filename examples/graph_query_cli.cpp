// Command-line front end: load a graph from an edge-list file (or generate
// one), fragment it, and answer reachability queries from the command line —
// the "downstream user" entry point of the library.
//
// Usage:
//   graph_query_cli --graph=path.txt --sites=4 [--partitioner=chunk]
//       reach 17 1042
//   graph_query_cli --generate=livejournal --scale=0.01 bounded 17 1042 6
//   graph_query_cli --graph=g.txt regular 17 1042 "a (b | c)*"
//   graph_query_cli --graph=g.txt stats
//
// Query verbs: reach <s> <t> | bounded <s> <t> <l> | regular <s> <t> <R> |
// stats. Labels in regular queries are the numeric label ids interned as
// "l<N>" (e.g. "l0 (l1 | l2)*") unless the graph file carries named labels.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/dist_graph.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"

using namespace pereach;  // NOLINT — examples favour brevity

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: graph_query_cli [--graph=FILE | --generate=DATASET] "
      "[--scale=F]\n"
      "       [--sites=K] [--partitioner=random|chunk|bfs] [--seed=N]\n"
      "       [--engine=partial-eval|ship-all|message-passing|mapreduce]\n"
      "       (stats | reach S T | bounded S T L | regular S T REGEX)\n");
  return 2;
}

Graph LoadOrGenerate(const std::string& graph_path,
                     const std::string& dataset_name, double scale,
                     uint64_t seed) {
  if (!graph_path.empty()) {
    Result<Graph> r = ReadEdgeList(graph_path);
    if (!r.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", graph_path.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(r).value();
  }
  Rng rng(seed);
  for (Dataset d : {Dataset::kLiveJournal, Dataset::kWikiTalk,
                    Dataset::kBerkStan, Dataset::kNotreDame, Dataset::kAmazon,
                    Dataset::kCitation, Dataset::kMeme, Dataset::kYoutube,
                    Dataset::kInternet}) {
    std::string lower = DatasetName(d);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == dataset_name) return MakeDataset(d, scale, &rng);
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", dataset_name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  std::string dataset = "amazon";
  std::string partitioner = "chunk";
  std::string engine_name = "partial-eval";
  double scale = 0.01;
  size_t sites = 4;
  uint64_t seed = 42;

  int arg = 1;
  for (; arg < argc && std::strncmp(argv[arg], "--", 2) == 0; ++arg) {
    const std::string a = argv[arg];
    if (a.rfind("--graph=", 0) == 0) {
      graph_path = a.substr(8);
    } else if (a.rfind("--generate=", 0) == 0) {
      dataset = a.substr(11);
    } else if (a.rfind("--scale=", 0) == 0) {
      scale = std::atof(a.c_str() + 8);
    } else if (a.rfind("--sites=", 0) == 0) {
      sites = static_cast<size_t>(std::atoll(a.c_str() + 8));
    } else if (a.rfind("--partitioner=", 0) == 0) {
      partitioner = a.substr(14);
    } else if (a.rfind("--engine=", 0) == 0) {
      engine_name = a.substr(9);
    } else if (a.rfind("--seed=", 0) == 0) {
      seed = static_cast<uint64_t>(std::atoll(a.c_str() + 7));
    } else {
      return Usage();
    }
  }
  if (arg >= argc) return Usage();
  const std::string verb = argv[arg++];

  Graph graph = LoadOrGenerate(graph_path, dataset, scale, seed);
  Rng rng(seed);
  std::vector<SiteId> partition;
  if (partitioner == "random") {
    partition = RandomPartitioner().Partition(graph, sites, &rng);
  } else if (partitioner == "chunk") {
    partition = ChunkPartitioner().Partition(graph, sites, &rng);
  } else if (partitioner == "bfs") {
    partition = BfsGrowPartitioner().Partition(graph, sites, &rng);
  } else {
    return Usage();
  }

  Engine engine = Engine::kPartialEval;
  if (engine_name == "ship-all") {
    engine = Engine::kShipAll;
  } else if (engine_name == "message-passing") {
    engine = Engine::kMessagePassing;
  } else if (engine_name == "mapreduce") {
    engine = Engine::kMapReduce;
  } else if (engine_name != "partial-eval") {
    return Usage();
  }

  const size_t num_nodes = graph.NumNodes();
  LabelDictionary labels;
  LabelId max_label = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    max_label = std::max(max_label, graph.label(v));
  }
  for (LabelId l = 0; l <= max_label; ++l) {
    labels.Intern("l" + std::to_string(l));
  }

  DistributedGraph dg(std::move(graph), partition, sites);

  if (verb == "stats") {
    const Fragmentation& f = dg.fragmentation();
    std::printf("nodes=%zu edges=%zu labels=%u sites=%zu\n", num_nodes,
                dg.graph().NumEdges(), max_label + 1, sites);
    std::printf("cross_edges=%zu boundary(|Vf|)=%zu largest_fragment=%zu\n",
                f.num_cross_edges(), f.num_boundary_nodes(),
                f.largest_fragment_size());
    for (SiteId sid = 0; sid < f.num_fragments(); ++sid) {
      std::printf("  site %u: |V|=%zu |I|=%zu |O|=%zu\n", sid,
                  f.fragment(sid).num_local(),
                  f.fragment(sid).in_nodes().size(),
                  f.fragment(sid).num_virtual());
    }
    return 0;
  }

  const auto parse_node = [&](const char* text) -> NodeId {
    const long long v = std::atoll(text);
    if (v < 0 || static_cast<size_t>(v) >= num_nodes) {
      std::fprintf(stderr, "node %lld out of range [0, %zu)\n", v, num_nodes);
      std::exit(1);
    }
    return static_cast<NodeId>(v);
  };

  QueryAnswer answer;
  if (verb == "reach" && arg + 2 <= argc) {
    answer = dg.Reach(parse_node(argv[arg]), parse_node(argv[arg + 1]), engine);
  } else if (verb == "bounded" && arg + 3 <= argc) {
    answer = dg.BoundedReach(parse_node(argv[arg]), parse_node(argv[arg + 1]),
                             static_cast<uint32_t>(std::atoll(argv[arg + 2])),
                             engine);
  } else if (verb == "regular" && arg + 3 <= argc) {
    Result<Regex> regex = Regex::Parse(argv[arg + 2], labels);
    if (!regex.ok()) {
      std::fprintf(stderr, "bad regex: %s\n",
                   regex.status().ToString().c_str());
      return 1;
    }
    answer = dg.RegularReach(parse_node(argv[arg]), parse_node(argv[arg + 1]),
                             regex.value(), engine);
  } else {
    return Usage();
  }

  std::printf("answer: %s", answer.reachable ? "true" : "false");
  if (answer.distance != kInfWeight) {
    std::printf(" (distance %llu)",
                static_cast<unsigned long long>(answer.distance));
  }
  std::printf("\n%s\n", answer.metrics.Summary().c_str());
  return 0;
}
