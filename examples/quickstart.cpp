// Quickstart: build a labeled graph, distribute it over 4 simulated sites,
// and evaluate all three query classes of the paper with the partial-
// evaluation engines.
//
//   $ ./quickstart
//
// See examples/social_recommendation.cpp for the paper's running example and
// README.md for the API tour.

#include <cstdio>

#include "src/core/dist_graph.h"
#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"

using namespace pereach;  // NOLINT — examples favour brevity

int main() {
  // 1. Generate a labeled graph (or load one with ReadEdgeList).
  Rng rng(/*seed=*/7);
  Graph graph = ForestFire(/*n=*/20000, /*p_forward=*/0.30, /*num_labels=*/4,
                           &rng);
  std::printf("graph: %zu nodes, %zu edges\n", graph.NumNodes(),
              graph.NumEdges());

  // 2. Distribute it: any node -> site assignment works (the algorithms
  //    impose no constraint on fragmentation). A locality-aware partitioner
  //    keeps the boundary |V_f| — and with it all query traffic — small;
  //    RandomPartitioner() is the adversarial alternative.
  const size_t kSites = 4;
  const std::vector<SiteId> partition =
      BfsGrowPartitioner().Partition(graph, kSites, &rng);

  DistributedGraph dg(std::move(graph), partition, kSites);
  std::printf("fragmentation: %zu sites, %zu cross edges, |Vf| = %zu\n",
              dg.fragmentation().num_fragments(),
              dg.fragmentation().num_cross_edges(),
              dg.fragmentation().num_boundary_nodes());

  // 3. Reachability: is there a path src ~> dst?
  const NodeId src = 19993, dst = 0;  // forest-fire edges point to older nodes
  const QueryAnswer reach = dg.Reach(src, dst);
  std::printf("\nq_r(src, dst)       = %s\n  %s\n",
              reach.reachable ? "true" : "false",
              reach.metrics.Summary().c_str());

  // 4. Bounded reachability: within 20 hops?
  const QueryAnswer bounded = dg.BoundedReach(src, dst, 20);
  std::printf("q_br(src, dst, 20)   = %s (distance %llu)\n  %s\n",
              bounded.reachable ? "true" : "false",
              static_cast<unsigned long long>(bounded.distance),
              bounded.metrics.Summary().c_str());

  // 5. Regular reachability: a path whose interior labels match the regex?
  LabelDictionary dict;
  dict.Intern("a");  // label 0
  dict.Intern("b");  // label 1
  dict.Intern("c");  // label 2
  dict.Intern("d");  // label 3
  Result<Regex> regex = Regex::Parse("(a | b | c | d)*", dict);
  if (!regex.ok()) {
    std::printf("regex error: %s\n", regex.status().ToString().c_str());
    return 1;
  }
  const QueryAnswer regular = dg.RegularReach(src, dst, regex.value());
  std::printf("q_rr(src, dst, R)   = %s\n  %s\n",
              regular.reachable ? "true" : "false",
              regular.metrics.Summary().c_str());

  // 6. Compare against the ship-everything baseline: same answer, far more
  //    traffic.
  const QueryAnswer naive = dg.Reach(src, dst, Engine::kShipAll);
  std::printf("\nship-all baseline traffic: %.3f MB vs partial-eval %.3f MB\n",
              naive.metrics.traffic_mb(), reach.metrics.traffic_mb());
  return 0;
}
