// The paper's running example (Fig. 1): a recommendation network
// geo-distributed over three data centers DC1, DC2, DC3. CTO Ann wants to
// know whether a chain of recommendations leads to her finance analyst Mark
// — possibly restricted to chains of DB people or HR people.
//
// This example reproduces, end to end, Examples 1-8 of the paper:
//   q_r(Ann, Mark)                (Example 3-4)
//   q_br(Ann, Mark, 6)            (Example 5)
//   q_rr(Ann, Mark, DB* ∪ HR*)    (Examples 6-8)
// and prints the per-site partial answers the text walks through.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dist_graph.h"
#include "src/core/local_eval.h"
#include "src/graph/graph.h"

using namespace pereach;  // NOLINT — examples favour brevity

namespace {

struct Person {
  std::string name;
  std::string job;
  SiteId site;
};

}  // namespace

int main() {
  // --- Build the Fig. 1 network. -------------------------------------------
  const std::vector<Person> people = {
      {"Ann", "CTO", 0}, {"Walt", "HR", 0}, {"Bill", "DB", 0},
      {"Fred", "HR", 0}, {"Mat", "HR", 1},  {"Emmy", "HR", 1},
      {"Jack", "MK", 1}, {"Pat", "SE", 2},  {"Ross", "HR", 2},
      {"Tom", "AI", 2},  {"Mark", "FA", 2},
  };
  LabelDictionary jobs;
  GraphBuilder builder;
  std::vector<SiteId> partition;
  for (const Person& p : people) {
    builder.AddNode(jobs.Intern(p.job));
    partition.push_back(p.site);
  }
  const auto id = [&people](const std::string& name) -> NodeId {
    for (NodeId v = 0; v < people.size(); ++v) {
      if (people[v].name == name) return v;
    }
    return kInvalidNode;
  };
  const std::vector<std::pair<std::string, std::string>> recommendations = {
      {"Ann", "Walt"},  {"Ann", "Bill"}, {"Walt", "Mat"}, {"Bill", "Pat"},
      {"Fred", "Emmy"}, {"Mat", "Fred"}, {"Emmy", "Mat"}, {"Jack", "Mat"},
      {"Emmy", "Ross"}, {"Pat", "Jack"}, {"Ross", "Mark"},
  };
  for (const auto& [from, to] : recommendations) {
    builder.AddEdge(id(from), id(to));
  }

  DistributedGraph dg(std::move(builder).Build(), partition, 3);
  const NodeId ann = id("Ann");
  const NodeId mark = id("Mark");

  std::printf("Recommendation network over 3 data centers:\n");
  for (SiteId s = 0; s < 3; ++s) {
    const Fragment& f = dg.fragmentation().fragment(s);
    std::printf("  DC%u: %zu people, %zu cross recommendations, F%u.I = {",
                s + 1, f.num_local(), f.num_cross_edges(), s + 1);
    bool first = true;
    for (NodeId in : f.in_nodes()) {
      std::printf("%s%s", first ? "" : ", ",
                  people[f.ToGlobal(in)].name.c_str());
      first = false;
    }
    std::printf("}\n");
  }

  // --- Example 3: the Boolean equations each site ships. -------------------
  std::printf("\nPartial answers for q_r(Ann, Mark) (Example 3):\n");
  for (SiteId s = 0; s < 3; ++s) {
    const Fragment& f = dg.fragmentation().fragment(s);
    const ReachPartialAnswer pa =
        LocalEvalReach(f, ann, mark, EquationForm::kClosure);
    for (const auto& eq : pa.equations) {
      std::printf("  DC%u:  x%s =", s + 1, people[eq.var].name.c_str());
      bool first = true;
      if (eq.has_true) {
        std::printf(" true");
        first = false;
      }
      for (uint32_t dep : eq.deps) {
        std::printf("%s x%s", first ? "" : " ∨",
                    people[pa.oset_globals[dep]].name.c_str());
        first = false;
      }
      if (first) std::printf(" false");
      std::printf("\n");
    }
  }

  // --- Example 4: solve the system. ----------------------------------------
  const QueryAnswer reach = dg.Reach(ann, mark);
  std::printf("\nq_r(Ann, Mark) = %s   [%s]\n",
              reach.reachable ? "true" : "false",
              reach.metrics.Summary().c_str());

  // --- Example 5: bounded reachability. ------------------------------------
  const QueryAnswer within6 = dg.BoundedReach(ann, mark, 6);
  const QueryAnswer within5 = dg.BoundedReach(ann, mark, 5);
  std::printf("q_br(Ann, Mark, 6) = %s (chain of length %llu)\n",
              within6.reachable ? "true" : "false",
              static_cast<unsigned long long>(within6.distance));
  std::printf("q_br(Ann, Mark, 5) = %s\n",
              within5.reachable ? "true" : "false");

  // --- Examples 6-8: regular reachability. ----------------------------------
  Result<Regex> r = Regex::Parse("DB* | HR*", jobs);
  if (!r.ok()) {
    std::printf("regex error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  const QueryAnswer regular = dg.RegularReach(ann, mark, r.value());
  std::printf("q_rr(Ann, Mark, DB* ∪ HR*) = %s   [%s]\n",
              regular.reachable ? "true" : "false",
              regular.metrics.Summary().c_str());

  Result<Regex> db_only = Regex::Parse("DB*", jobs);
  std::printf("q_rr(Ann, Mark, DB*) = %s  (no all-DB chain exists)\n",
              dg.RegularReach(ann, mark, db_only.value()).reachable ? "true"
                                                                     : "false");

  // --- The guarantee the paper highlights: one visit per site. -------------
  std::printf(
      "\nEvery query above visited each data center exactly once and shipped"
      "\nonly Boolean equations — never the fragments themselves.\n");
  return 0;
}
