// server_stats: the serving layer's observability surface, live.
//
//   $ ./server_stats           # run a demo workload, print every metric
//   $ ./server_stats --list    # print the metric catalog (name/type/unit)
//   $ ./server_stats --json    # demo workload, dump the JSON snapshot
//
// The catalog printed by --list is the stable operations surface: every
// name is documented in docs/OPERATIONS.md (CI's docs gate checks this),
// and the JSON shape is what `bench_server --metrics-json=` writes.
//
// The server_transport_* recovery family (retries, respawns, degraded
// rounds, open breakers) reads zero here — the demo runs the in-process
// simulated transport. `bench_server --transport=socket --chaos` drives
// them against real worker processes under fault injection.

#include <cstdio>
#include <cstring>

#include "src/fragment/partitioner.h"
#include "src/graph/generators.h"
#include "src/server/query_server.h"

using namespace pereach;  // NOLINT — examples favour brevity

namespace {

void PrintCatalog() {
  std::printf("%-36s %-10s %-9s %s\n", "name", "type", "unit", "meaning");
  std::printf("%-36s %-10s %-9s %s\n", "----", "----", "----", "-------");
  for (const auto& infos :
       {CounterInfos(), GaugeInfos(), HistogramInfos()}) {
    for (const MetricInfo& info : infos) {
      std::printf("%-36s %-10s %-9s %s\n", info.name, info.type, info.unit,
                  info.help);
    }
  }
}

void PrintSnapshot(const MetricsSnapshot& snap) {
  std::printf("counters\n");
  const auto counters = CounterInfos();
  for (size_t i = 0; i < counters.size(); ++i) {
    std::printf("  %-36s %llu\n", counters[i].name,
                static_cast<unsigned long long>(snap.counters[i]));
  }
  std::printf("gauges\n");
  const auto gauges = GaugeInfos();
  for (size_t i = 0; i < gauges.size(); ++i) {
    std::printf("  %-36s %g\n", gauges[i].name, snap.gauges[i]);
  }
  std::printf("histograms%30s%10s%10s%10s%10s\n", "count", "p50", "p90",
              "p99", "max");
  const auto histograms = HistogramInfos();
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    std::printf("  %-36s %lu %9.3g %9.3g %9.3g %9.3g\n", histograms[i].name,
                static_cast<unsigned long>(h.count), h.p50, h.p90, h.p99,
                h.max);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      PrintCatalog();
      return 0;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    std::printf("usage: %s [--list | --json]\n", argv[0]);
    return 1;
  }

  // A small hardened server under a demo workload: cache on, tight queue
  // budget, a repeated query mix — enough traffic to light up every metric
  // family (hits, misses, rejections, updates, per-class histograms).
  Rng rng(7);
  const size_t n = 400, k_sites = 4;
  Graph graph = ForestFire(n, 0.30, /*num_labels=*/2, &rng);
  const std::vector<SiteId> partition =
      BfsGrowPartitioner().Partition(graph, k_sites, &rng);
  IncrementalReachIndex index(graph, partition, k_sites);

  ServerOptions options;
  options.policy.max_batch = 16;
  options.policy.max_window_us = 2000;
  options.cache.enabled = true;
  options.admission.max_queue = 8;
  options.admission.tenant_quota = 32;
  QueryServer server(&index, options);

  std::vector<Query> pool;
  for (int i = 0; i < 12; ++i) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(n));
    const NodeId t = static_cast<NodeId>(rng.Uniform(n));
    if (i % 3 == 2) {
      pool.push_back(Query::Dist(s, t, 8));
    } else {
      pool.push_back(Query::Reach(s, t));
    }
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<ServedAnswer>> inflight;
    for (int i = 0; i < 60; ++i) {
      inflight.push_back(server.Submit(pool[rng.Uniform(pool.size())],
                                       /*tenant=*/rng.Uniform(3)));
    }
    for (auto& f : inflight) f.get();
    server.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
                   static_cast<NodeId>(rng.Uniform(n)));
  }
  server.Drain();

  if (json) {
    std::fputs(server.MetricsJson().c_str(), stdout);
    return 0;
  }
  std::printf(
      "demo workload: 3 rounds x 60 submissions over a %zu-query pool, "
      "3 tenants, 1 update per round\n\n", pool.size());
  PrintSnapshot(server.Metrics());
  std::printf(
      "\nfull reference: docs/OPERATIONS.md (metrics table, tuning guide); "
      "JSON export: --json here or bench_server --metrics-json=PATH\n");
  return 0;
}
