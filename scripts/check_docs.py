#!/usr/bin/env python3
"""CI docs gate: the documented operations surface must match the code.

Checks, in order:
  1. Every field of the operator-facing option structs
     (PartialEvalOptions, ServerOptions, BatchPolicy, AnswerCacheOptions,
     AdmissionOptions) is mentioned in README.md AND docs/OPERATIONS.md.
  2. Every metric name in the src/server/server_metrics.cc catalog tables
     is documented in docs/OPERATIONS.md.
  3. Every bench_server flag literal is documented in docs/OPERATIONS.md.
  4. Markdown link hygiene across tracked *.md files: relative link
     targets exist, and `DESIGN.md §N[.M]` references resolve to real
     `## N.` / `### N.M` headings.
  5. Every LockRank enumerator in src/util/sync.h appears in the
     DESIGN.md §12 rank table with its exact numeric value — an
     undocumented (or misnumbered) mutex rank fails CI.

Run from the repo root: python3 scripts/check_docs.py
"""

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

OPTION_STRUCTS = {
    "src/engine/partial_eval_engine.h": ["PartialEvalOptions"],
    "src/server/query_server.h": ["ServerOptions"],
    "src/server/batch_queue.h": ["BatchPolicy"],
    "src/server/answer_cache.h": ["AnswerCacheOptions"],
    "src/server/admission.h": ["AdmissionOptions"],
    "src/net/transport.h": ["TransportOptions", "FaultPlan"],
}

METRICS_SOURCE = "src/server/server_metrics.cc"
BENCH_SERVER = "bench/bench_server.cc"
README = "README.md"
OPERATIONS = "docs/OPERATIONS.md"

errors = []


def fail(msg: str) -> None:
    errors.append(msg)


def struct_fields(header: str, struct: str) -> list[str]:
    """Extracts field names of `struct X { ... };` (brace-matched, one
    declaration per line, skipping comments/methods/static members)."""
    text = (ROOT / header).read_text()
    m = re.search(r"struct\s+%s\s*\{" % re.escape(struct), text)
    if not m:
        fail(f"{header}: struct {struct} not found")
        return []
    depth, body_start = 1, m.end()
    i = body_start
    while i < len(text) and depth > 0:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    body = text[body_start : i - 1]
    fields = []
    for line in body.splitlines():
        line = line.split("//")[0].strip()
        if not line.endswith(";") or "(" in line or line.startswith("static"):
            continue
        decl = line[:-1].split("=")[0].strip()
        if not decl:
            continue
        name = decl.split()[-1].lstrip("*&")
        if re.fullmatch(r"[A-Za-z_]\w*", name):
            fields.append(name)
    if not fields:
        fail(f"{header}: no fields parsed for {struct} (parser drift?)")
    return fields


def metric_names() -> list[str]:
    """Metric names from the catalog tables: one {"name", ...} per line."""
    names = re.findall(r'^\s*\{"(server_\w+)",',
                       (ROOT / METRICS_SOURCE).read_text(), re.M)
    if len(names) < 10:
        fail(f"{METRICS_SOURCE}: only {len(names)} metric names parsed "
             "(catalog format drift? keep one entry per line, name first)")
    return names


def bench_server_flags() -> list[str]:
    """Flag literals bench_server parses (strncmp/strcmp string prefixes)."""
    text = (ROOT / BENCH_SERVER).read_text()
    flags = set()
    for literal in re.findall(r'"(--[a-z-]+)[="]', text):
        flags.add(literal)
    if len(flags) < 5:
        fail(f"{BENCH_SERVER}: only {len(flags)} flags parsed (drift?)")
    return sorted(flags)


def tracked_markdown() -> list[Path]:
    out = subprocess.run(["git", "ls-files", "*.md"], cwd=ROOT,
                         capture_output=True, text=True, check=True).stdout
    return [ROOT / p for p in out.split() if p]


def check_coverage() -> None:
    readme = (ROOT / README).read_text()
    operations = (ROOT / OPERATIONS).read_text()
    for header, structs in OPTION_STRUCTS.items():
        for struct in structs:
            for field in struct_fields(header, struct):
                for doc_name, doc in ((README, readme),
                                      (OPERATIONS, operations)):
                    if f"`{field}`" not in doc and field not in doc:
                        fail(f"{doc_name}: {struct}::{field} (from {header}) "
                             "is undocumented")
    for name in metric_names():
        if name not in operations:
            fail(f"{OPERATIONS}: metric {name} is undocumented")
    for flag in bench_server_flags():
        if flag not in operations:
            fail(f"{OPERATIONS}: bench_server flag {flag} is undocumented")


def design_headings() -> set[str]:
    """Section numbers like '11' and '11.2' from DESIGN.md headings."""
    sections = set()
    for line in (ROOT / "DESIGN.md").read_text().splitlines():
        m = re.match(r"#{2,3}\s+(\d+(?:\.\d+)?)\.?\s", line)
        if m:
            sections.add(m.group(1))
    return sections


def check_links() -> None:
    sections = design_headings()
    # Inline code/fences can contain anything; strip fenced blocks first.
    fence = re.compile(r"```.*?```", re.S)
    for md in tracked_markdown():
        text = fence.sub("", md.read_text())
        rel = md.relative_to(ROOT)
        for target in re.findall(r"\]\(([^)#\s]+)(?:#[^)]*)?\)", text):
            if re.match(r"[a-z]+://", target):
                continue  # external URL; availability is not ours to gate
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                fail(f"{rel}: broken link target {target}")
        for ref in re.findall(r"DESIGN(?:\.md)?\)?\s+§(\d+(?:\.\d+)?)", text):
            if ref not in sections:
                fail(f"{rel}: DESIGN.md §{ref} does not match any heading")
        if md.name == "DESIGN.md":
            for ref in re.findall(r"§(\d+(?:\.\d+)?)", text):
                if ref not in sections:
                    fail(f"{rel}: §{ref} does not match any heading")


def check_lock_table() -> None:
    """Every LockRank enumerator must appear in the DESIGN.md §12 table with
    its exact numeric rank (the prose half of the order must not drift from
    the machine half; check_static.py covers the per-mutex declarations)."""
    sync = (ROOT / "src/util/sync.h").read_text()
    enum = re.search(r"enum class LockRank[^{]*\{(.*?)\n\};", sync, re.S)
    if not enum:
        fail("src/util/sync.h: LockRank enum not found (parser drift?)")
        return
    design = (ROOT / "DESIGN.md").read_text()
    start = design.find("## 12.")
    if start < 0:
        fail("DESIGN.md: §12 (concurrency invariants) heading is missing")
        return
    sec = design[start:]
    for name, value in re.findall(r"\b(k\w+)\s*=\s*(\d+)", enum.group(1)):
        if f"`{name}`" not in sec:
            fail(f"DESIGN.md §12: LockRank::{name} is undocumented")
        elif not re.search(r"\|\s*%s\s*\|\s*`%s`" % (value, name), sec):
            fail(f"DESIGN.md §12: `{name}` documented with a rank other "
                 f"than its enumerator value {value}")


def main() -> int:
    check_coverage()
    check_links()
    check_lock_table()
    if errors:
        for e in errors:
            print(f"check_docs: {e}", file=sys.stderr)
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: options, metrics, bench flags and links all "
          "documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
