#!/usr/bin/env python3
"""CI static gate: the lock discipline of DESIGN.md §12 must hold in code.

Checks, in order:
  1. No naked synchronization primitives. Outside src/util/sync.h, no file
     under src/ may name std::mutex, std::shared_mutex, std::lock_guard,
     std::unique_lock, std::shared_lock, std::scoped_lock or
     std::condition_variable — every lock must be a ranked, annotated
     pereach::Mutex / SharedMutex so the thread-safety analysis and the
     lock-rank detector cover it. (tests/ and bench/ are held to the same
     rule; the sole std::unique_lock in sync.h itself is the condvar
     adopt-lock bridge.)
  2. Every Mutex / SharedMutex declaration in src/ names a LockRank.
  3. Every LockRank enumerator in src/util/sync.h appears in the DESIGN.md
     §12 rank table, and every mutex member declared in src/ appears there
     by its qualified name (e.g. `QueryServer::drain_mu_`).

Run from the repo root: python3 scripts/check_static.py
"""

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

SYNC_HEADER = "src/util/sync.h"
DESIGN = "DESIGN.md"

FORBIDDEN = [
    "std::mutex",
    "std::shared_mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::shared_lock",
    "std::scoped_lock",
    "std::condition_variable",
]

errors = []


def fail(msg: str) -> None:
    errors.append(msg)


def tracked_sources() -> list[str]:
    out = subprocess.run(
        ["git", "ls-files", "src", "tests", "bench", "examples"],
        cwd=ROOT, capture_output=True, text=True, check=True).stdout
    return [f for f in out.splitlines()
            if f.endswith((".h", ".cc", ".cpp"))]


def strip_comments(text: str) -> str:
    """Drops // and /* */ comments so prose mentions don't trip the gate."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def check_no_naked_primitives(files: list[str]) -> None:
    for f in files:
        if f == SYNC_HEADER:
            continue
        code = strip_comments((ROOT / f).read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            for prim in FORBIDDEN:
                if prim in line:
                    fail(f"{f}:{lineno}: naked {prim} — use the ranked "
                         f"wrappers in {SYNC_HEADER} (DESIGN.md §12)")


MUTEX_DECL = re.compile(
    r"\b(?:mutable\s+)?(Mutex|SharedMutex)\s+(\w+)\s*(\{[^}]*\})?")


def find_mutex_decls(files: list[str]) -> list[tuple[str, int, str, str]]:
    """(file, line, member, rank-initializer) for every Mutex member/local
    declared in src/ (sync.h's own class definitions excluded)."""
    decls = []
    for f in files:
        if not f.startswith("src/") or f == SYNC_HEADER:
            continue
        code = strip_comments((ROOT / f).read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            m = MUTEX_DECL.search(line)
            if not m:
                continue
            # Skip parameters / references / pointers ("Mutex* mu").
            if re.search(r"\b(?:Mutex|SharedMutex)\s*[*&]", line):
                continue
            decls.append((f, lineno, m.group(2), m.group(3) or ""))
    return decls


def check_ranked_and_documented(decls) -> None:
    design = (ROOT / DESIGN).read_text()
    sec = design[design.find("## 12."):]
    if not sec:
        fail(f"{DESIGN}: §12 (concurrency invariants) is missing")
        return

    # 2. Every declaration carries a LockRank initializer.
    for f, lineno, member, init in decls:
        if "LockRank::" not in init:
            fail(f"{f}:{lineno}: {member} declared without a LockRank — "
                 f"every mutex must name its rank (DESIGN.md §12)")

    # 3a. Every LockRank enumerator appears in the §12 table.
    sync = strip_comments((ROOT / SYNC_HEADER).read_text())
    enum = re.search(r"enum class LockRank[^{]*\{(.*?)\}", sync, re.S)
    if not enum:
        fail(f"{SYNC_HEADER}: LockRank enum not found")
        return
    for name in re.findall(r"\b(k\w+)\s*=", enum.group(1)):
        if f"`{name}`" not in sec:
            fail(f"{SYNC_HEADER}: LockRank::{name} is not documented in "
                 f"the {DESIGN} §12 rank table")

    # 3b. Every declared mutex member appears in §12 by qualified name.
    for f, lineno, member, _ in decls:
        text = (ROOT / f).read_text()
        cls = None
        for cm in re.finditer(r"\bclass\s+(\w+)", text[:_offset(text, lineno)]):
            cls = cm.group(1)
        qualified = f"{cls}::{member}" if cls else member
        if qualified not in sec and member not in sec:
            fail(f"{f}:{lineno}: {qualified} is not documented in the "
                 f"{DESIGN} §12 rank table")


def _offset(text: str, lineno: int) -> int:
    return sum(len(l) + 1 for l in text.splitlines()[:lineno - 1])


def main() -> int:
    files = tracked_sources()
    check_no_naked_primitives(files)
    decls = find_mutex_decls(files)
    check_ranked_and_documented(decls)
    if errors:
        print(f"check_static: {len(errors)} error(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"check_static: OK ({len(files)} files, {len(decls)} ranked "
          f"mutex declarations, all documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
